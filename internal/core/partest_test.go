// Differential validation of the parallel engine: every example program,
// on every ISA (homogeneous clusters) plus the heterogeneous Figure 1
// network, must behave identically under the sequential reference engine
// and the parallel per-node-goroutine engine — same printed lines, same
// simulated elapsed time, same faults, same per-node cycle and instruction
// counts, same final memory images, a byte-identical rendered event
// stream, a byte-identical metrics snapshot, and identical migration
// spans. Run under -race this doubles as the data-race check for the
// node-confined kernel state.
package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// captureParallel is captureDispatch with the engine choice instead of the
// dispatcher choice, plus the metrics and span projections.
func captureEngine(t *testing.T, src string, machines []netsim.MachineModel, parallel bool) (dispatchRun, []byte, []string) {
	t.Helper()
	sys, err := RunSource(src, machines, Options{Parallel: parallel})
	if err != nil {
		t.Fatalf("run (parallel=%v): %v", parallel, err)
	}
	r := dispatchRun{
		lines:    sys.Lines(),
		elapsed:  sys.ElapsedMS(),
		eventLog: obs.EventLog(sys.Recorder()),
	}
	for _, f := range sys.Cluster.Faults {
		r.faults = append(r.faults, fmt.Sprintf("node %d frag %d at %v: %s", f.Node, f.Frag, f.At, f.Msg))
	}
	for _, n := range sys.Cluster.Nodes {
		r.cycles = append(r.cycles, n.CPU.Cycles)
		r.instrs = append(r.instrs, n.Instrs)
		r.memSum = append(r.memSum, append([]byte(nil), n.Mem...))
	}
	snap := sys.MetricsSnapshot()
	snapJSON, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal metrics: %v", err)
	}
	var spans []string
	for _, s := range sys.Recorder().Spans() {
		spans = append(spans, s.String())
	}
	return r, snapJSON, spans
}

// checkGoroutines fails the test if a parallel run leaked node goroutines.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak after parallel run: %d before, %d after\n%s",
				before, n, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestParallelDifferential(t *testing.T) {
	progs, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.em"))
	if err != nil || len(progs) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	nets := []struct {
		name     string
		machines []netsim.MachineModel
	}{
		{"vax", []netsim.MachineModel{netsim.VAXstation2000, netsim.VAXstation2000, netsim.VAXstation2000}},
		{"m68k", []netsim.MachineModel{netsim.Sun3_100, netsim.HP9000_433s, netsim.HP9000_385}},
		{"sparc", []netsim.MachineModel{netsim.SPARCstationSLC, netsim.SPARCstationSLC, netsim.SPARCstationSLC}},
		{"figure1", Figure1Network()},
	}
	for _, pf := range progs {
		srcBytes, err := os.ReadFile(pf)
		if err != nil {
			t.Fatalf("reading %s: %v", pf, err)
		}
		src := string(srcBytes)
		for _, net := range nets {
			t.Run(filepath.Base(pf)+"/"+net.name, func(t *testing.T) {
				before := runtime.NumGoroutine()
				seq, seqSnap, seqSpans := captureEngine(t, src, net.machines, false)
				par, parSnap, parSpans := captureEngine(t, src, net.machines, true)
				checkGoroutines(t, before)
				diffDispatchRuns(t, "parallel", par, seq)
				if !bytes.Equal(parSnap, seqSnap) {
					t.Errorf("metrics snapshots differ:\npar %s\nseq %s", parSnap, seqSnap)
				}
				if len(parSpans) != len(seqSpans) {
					t.Fatalf("span count: %d (parallel) vs %d (sequential)", len(parSpans), len(seqSpans))
				}
				for i := range parSpans {
					if parSpans[i] != seqSpans[i] {
						t.Errorf("span %d: %q (parallel) vs %q (sequential)", i, parSpans[i], seqSpans[i])
					}
				}
				if len(seq.lines) == 0 {
					t.Error("program printed nothing; differential comparison is vacuous")
				}
			})
		}
	}
}
