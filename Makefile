# The tier-1 gate: everything `make ci` runs must stay green on every
# commit (see ROADMAP.md). The emvet step keeps the example corpus clean
# under the mobility-soundness analyzer on every ISA; the emtrace and
# benchjson smokes keep the observability exports loadable.

GO ?= go

.PHONY: ci build test vet emvet race emtrace-smoke benchjson-smoke

ci: vet build race emvet emtrace-smoke benchjson-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

emvet:
	$(GO) run ./cmd/emvet examples/programs/*.em

# A Chrome trace of the kilroy tour must export and parse as JSON.
emtrace-smoke:
	mkdir -p .ci
	$(GO) run ./cmd/emtrace -chrome .ci/kilroy_trace.json -metrics .ci/kilroy_metrics.json examples/programs/kilroy.em
	$(GO) run ./tools/jsoncheck .ci/kilroy_trace.json .ci/kilroy_metrics.json

# embench table1 must write parseable BENCH_table1.json.
benchjson-smoke:
	mkdir -p .ci
	$(GO) run ./cmd/embench -out .ci table1 > /dev/null
	$(GO) run ./tools/jsoncheck .ci/BENCH_table1.json
