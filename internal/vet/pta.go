// Points-to-backed passes: findings derived from the whole-program
// Steensgaard analysis (internal/pta) rather than from one function's
// metadata. All three are advisory — the mobility protocol stays correct
// without them — but each surfaces a migration-cost or placement fact the
// programmer cannot see locally.

package vet

import (
	"strings"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/pta"
)

// ptaResult lazily solves the whole-program analysis once per vet run.
// A nil result with done=true means the IR did not verify; the liveness
// pass reports that separately, so the pta passes just stay silent.
func (c *checker) ptaResult() *pta.Result {
	if c.ptaDone {
		return c.pta
	}
	c.ptaDone = true
	p := &ir.Program{}
	for _, oc := range c.prog.Objects {
		p.Objects = append(p.Objects, oc.IR)
	}
	if r, err := pta.Analyze(p); err == nil {
		c.pta = r
	}
	return c.pta
}

// ptaObject runs the points-to-backed passes over one object.
func (c *checker) ptaObject(oc *codegen.ObjectCode) {
	r := c.ptaResult()
	if r == nil {
		return
	}
	c.ptrEscape(oc, r)
	c.deadPtrAtStop(oc)
	c.immobileReach(oc, r)
}

// ptrEscape reports frame-local pointer slots whose referents may be
// captured into a heap location — an object field, array element, or
// result slot — and therefore outlive the activation. The runtime keeps
// every reference OID-backed so this is never unsound here; the finding
// marks the allocation as one whose lifetime is no longer bounded by the
// frame, the exact property a frame-local (register) object optimization
// would need to check first.
func (c *checker) ptrEscape(oc *codegen.ObjectCode, r *pta.Result) {
	for _, f := range oc.IR.Funcs {
		for v := f.NumParams + f.NumResults; v < f.NumVars; v++ {
			if f.VarKinds[v] != ir.VKPtr || !r.SlotEscapes(f.Name, v) {
				continue
			}
			c.report("ptr-escape", SevInfo, oc.Name, f.Name, "", -1,
				"referent of frame-local %s may be captured into a heap location "+
					"(object field, array element, or result slot) and outlive the "+
					"activation; it must stay OID-backed, never frame-allocated",
				f.VarNames[v])
		}
	}
}

// deadPtrAtStop reports pointer locals that are marshaled at a bus stop
// inside a loop although no path after the stop reads them: each
// migration or monitored transfer through such a stop swizzles (and on
// heterogeneous moves, converts) a reference the program will never look
// at again. The slot still crosses the wire faithfully when live-mask
// sharpening is off — the finding is about recurring cost, not
// correctness. Only may-assigned slots are reported: a never-assigned
// slot holds nil, which costs nothing to swizzle.
func (c *checker) deadPtrAtStop(oc *codegen.ObjectCode) {
	for _, f := range oc.IR.Funcs {
		fi, err := ir.Analyze(f, oc.IR.VarKinds)
		if err != nil {
			continue
		}
		nLocals := f.NumVars - f.NumParams - f.NumResults
		if nLocals == 0 {
			continue
		}
		hasPtrLocal := false
		for v := f.NumParams + f.NumResults; v < f.NumVars; v++ {
			if f.VarKinds[v] == ir.VKPtr {
				hasPtrLocal = true
			}
		}
		if !hasPtrLocal {
			continue
		}
		li := ir.Liveness(f, fi)
		assigned := mayAssignedAt(f)
		exp := expectedStops(f, fi, c.prog.Opts.OmitLoopPolls)
		reported := map[int]bool{}
		for n, e := range exp {
			if !inCycle(f, e.irPC) {
				continue
			}
			for v := f.NumParams + f.NumResults; v < f.NumVars; v++ {
				if f.VarKinds[v] != ir.VKPtr || reported[v] {
					continue
				}
				if assigned[e.irPC] == nil || !assigned[e.irPC][v] {
					continue
				}
				if li.LiveOut[e.irPC][v] {
					continue
				}
				reported[v] = true
				c.report("dead-ptr-at-stop", SevWarning, oc.Name, f.Name, "", n,
					"pointer local %s is dead at this in-loop stop but still assigned: "+
						"every transfer through the loop swizzles a reference no path "+
						"reads again (clear it, or narrow its scope)", f.VarNames[v])
			}
		}
	}
}

// immobileReach reports process-bearing objects whose thread can reach —
// through frame slots, object fields and array elements, across the call
// graph — an object some execution fixes to a node. Such a thread's
// closure cannot migrate as a unit: the pinned object stays put, so a
// group migration would sever locality with it. This is the static
// placement constraint emauto-style batching has to respect.
func (c *checker) immobileReach(oc *codegen.ObjectCode, r *pta.Result) {
	if !oc.IR.HasProcess {
		return
	}
	pinned := r.ProcessPinnedReach(oc.Name)
	if len(pinned) == 0 {
		return
	}
	c.report("immobile-reach", SevInfo, oc.Name, oc.Name+".$process", "", -1,
		"process thread can reach node-fixed objects: %s — the thread's "+
			"reachable closure cannot migrate as a unit", strings.Join(pinned, "; "))
}

// mayAssignedAt computes, per instruction, which frame slots some path
// reaching it has assigned (parameters count as assigned at entry). Rows
// of unreachable instructions stay nil.
func mayAssignedAt(f *ir.Func) [][]bool {
	nv := f.NumVars
	out := make([][]bool, len(f.Code))
	entry := make([]bool, nv)
	for v := 0; v < f.NumParams; v++ {
		entry[v] = true
	}
	out[0] = entry
	work := []int{0}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		st := append([]bool(nil), out[pc]...)
		if in := f.Code[pc]; in.Op == ir.StoreVar {
			st[in.A] = true
		}
		for _, s := range ir.Succs(f, pc) {
			if out[s] == nil {
				out[s] = append([]bool(nil), st...)
				work = append(work, s)
				continue
			}
			changed := false
			for v := range st {
				if st[v] && !out[s][v] {
					out[s][v] = true
					changed = true
				}
			}
			if changed {
				work = append(work, s)
			}
		}
	}
	return out
}

// inCycle reports whether pc lies on a control-flow cycle: whether pc is
// reachable from its own successors. Bus stops on a cycle are the ones a
// thread crosses repeatedly, where per-transfer waste compounds.
func inCycle(f *ir.Func, pc int) bool {
	seen := make([]bool, len(f.Code))
	work := append([]int(nil), ir.Succs(f, pc)...)
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		if p == pc {
			return true
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		work = append(work, ir.Succs(f, p)...)
	}
	return false
}
