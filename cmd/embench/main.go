// Command embench regenerates the paper's evaluation: Table 1 (thread
// mobility timings), Figure 2 (the thread-state specialization hierarchy),
// Figures 3/4 (bridging code), the §3.6 intra-node performance invariant,
// and the conversion-routine ablation.
//
// Usage:
//
//	embench [table1|fig1|fig2|fig3|intranode|conv|ablations|all]
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/netsim"
)

func main() {
	what := "all"
	if len(os.Args) > 1 {
		what = os.Args[1]
	}
	run := func(name string, f func() error) {
		if what != "all" && what != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "embench %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	run("fig1", figure1)
	run("table1", table1)
	run("fig2", figure2)
	run("fig3", figure3)
	run("intranode", intraNode)
	run("conv", conv)
	run("ablations", ablations)
}

func ablations() error {
	bs, err := exp.BusStopDensity()
	if err != nil {
		return err
	}
	homes, err := exp.RegisterHomes()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatAblations(bs, homes))
	return nil
}

func table1() error {
	cells, err := exp.Table1()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatTable1(cells))
	return nil
}

func figure1() error {
	fmt.Println("Figure 1: a network of heterogeneous nodes")
	for i, m := range core.Figure1Network() {
		fmt.Printf("  node%d: %-18s (%s, %.1f effective MHz)\n", i, m.Name, archName(m), m.MHz)
	}
	fmt.Println("  connected by a shared 10 Mbit/s Ethernet")
	return nil
}

func archName(m netsim.MachineModel) string {
	return [...]string{"vax", "m68k", "sparc"}[m.Arch]
}

func figure2() error {
	rows, err := exp.Figure2()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatFigure2(rows))
	return nil
}

func figure3() error {
	s, err := exp.Figure34()
	if err != nil {
		return err
	}
	fmt.Print(s)
	return nil
}

func intraNode() error {
	fmt.Println("§3.6 intra-node performance invariant (compute phase, ms):")
	fmt.Printf("%-20s %10s %10s %14s %6s\n", "machine", "local", "migrated", "original-sys", "ok")
	for _, m := range []netsim.MachineModel{
		netsim.VAXstation2000, netsim.Sun3_100, netsim.HP9000_433s, netsim.SPARCstationSLC,
	} {
		r, err := exp.IntraNode(m)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %10.1f %10.1f %14.1f %6v\n",
			r.Arch, r.LocalMS, r.MigratedMS, r.OriginalSysMS, r.EnhancedMatches)
	}
	fmt.Println("migrated threads run at native speed, identical to the original system")
	return nil
}

func conv() error {
	rs, err := exp.ConversionStudy()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatConversionStudy(rs))
	return nil
}
