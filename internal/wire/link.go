// Link-layer envelope for the crash-tolerant delivery protocol: every frame
// a kernel sends under a chaos plan is wrapped in a LinkFrame carrying a
// per-channel sequence number and a CRC-32, so the receiver can reject
// corrupted frames (the retransmission timer recovers them), deduplicate
// and reorder-buffer data frames, and acknowledge receipt.

package wire

import (
	"fmt"
	"hash/crc32"
)

// Link frame kinds. The values deliberately collide with no MsgKind so a
// bare Msg can never parse as a LinkFrame header by accident.
const (
	// LData is reliable payload: carries a serialized Msg, is acked by the
	// receiver, retransmitted by the sender until acked, delivered exactly
	// once and in sequence order per (src,dst) channel.
	LData byte = 0xD1
	// LAck acknowledges one LData sequence number (selective ack).
	LAck byte = 0xD2
	// LRaw is fire-and-forget with no payload semantics (heartbeats): not
	// acked, not retransmitted, not sequenced.
	LRaw byte = 0xD3
)

// LinkFrame is the envelope: [kind u8][seq u32][crc u32][inner ...] with
// crc = CRC-32 (IEEE) over kind, seq and inner.
type LinkFrame struct {
	Kind  byte
	Seq   uint32
	Inner []byte
}

// linkHeaderBytes is the envelope overhead.
const linkHeaderBytes = 1 + 4 + 4

// ErrBadFrame reports a link frame that failed structural or CRC checks.
type ErrBadFrame struct{ Reason string }

func (e *ErrBadFrame) Error() string { return "wire: bad link frame: " + e.Reason }

func linkCRC(kind byte, seq uint32, inner []byte) uint32 {
	h := crc32.NewIEEE()
	h.Write([]byte{kind, byte(seq >> 24), byte(seq >> 16), byte(seq >> 8), byte(seq)})
	h.Write(inner)
	return h.Sum32()
}

// Marshal serializes the frame.
func (f *LinkFrame) Marshal() []byte {
	e := &Enc{}
	e.U8(f.Kind)
	e.U32(f.Seq)
	e.U32(linkCRC(f.Kind, f.Seq, f.Inner))
	e.buf = append(e.buf, f.Inner...)
	return e.Bytes()
}

// ParseLinkFrame parses and verifies a link frame. A short buffer, unknown
// kind byte or CRC mismatch yields *ErrBadFrame — under chaos the caller
// drops such frames silently and lets retransmission recover.
func ParseLinkFrame(buf []byte) (*LinkFrame, error) {
	if len(buf) < linkHeaderBytes {
		return nil, &ErrBadFrame{Reason: fmt.Sprintf("short frame (%d bytes)", len(buf))}
	}
	f := &LinkFrame{Kind: buf[0]}
	if f.Kind != LData && f.Kind != LAck && f.Kind != LRaw {
		return nil, &ErrBadFrame{Reason: fmt.Sprintf("unknown kind 0x%02x", f.Kind)}
	}
	f.Seq = uint32(buf[1])<<24 | uint32(buf[2])<<16 | uint32(buf[3])<<8 | uint32(buf[4])
	crc := uint32(buf[5])<<24 | uint32(buf[6])<<16 | uint32(buf[7])<<8 | uint32(buf[8])
	f.Inner = buf[linkHeaderBytes:]
	if got := linkCRC(f.Kind, f.Seq, f.Inner); got != crc {
		return nil, &ErrBadFrame{Reason: fmt.Sprintf("crc mismatch (got %08x, frame says %08x)", got, crc)}
	}
	return f, nil
}
