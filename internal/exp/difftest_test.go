package exp

// Differential testing with randomly generated programs: the ultimate
// cross-check of the whole pipeline. Each generated program must print
// byte-identical output when executed
//
//   - by the source-level AST interpreter,
//   - by the byte-code interpreter,
//   - as native code on each of the three ISAs, and
//   - as native code on a heterogeneous cluster with `move self` statements
//     injected throughout the computation (thread state crossing
//     endianness, float-format, register-home and AR-layout boundaries).
//
// Any divergence pinpoints a bug in a code generator, an emulator, or the
// migration engine's thread-state conversion.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/kernel"
	"repro/internal/netsim"
)

// progGen generates random terminating programs.
type progGen struct {
	rng    *rand.Rand
	b      strings.Builder
	vars   []string // int locals in scope
	rvars  []string // real locals in scope
	nv     int
	depth  int
	moves  bool // inject `move self to ...`
	nnodes int
}

func (g *progGen) line(format string, args ...any) {
	g.b.WriteString(strings.Repeat("  ", g.depth+2))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// intExpr emits a random integer expression of bounded depth.
func (g *progGen) intExpr(d int) string {
	if d <= 0 || len(g.vars) == 0 || g.rng.Intn(3) == 0 {
		if len(g.vars) > 0 && g.rng.Intn(2) == 0 {
			return g.vars[g.rng.Intn(len(g.vars))]
		}
		return fmt.Sprintf("%d", g.rng.Intn(201)-100)
	}
	x, y := g.intExpr(d-1), g.intExpr(d-1)
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", x, y)
	case 1:
		return fmt.Sprintf("(%s - %s)", x, y)
	case 2:
		return fmt.Sprintf("(%s * %s)", x, y)
	case 3:
		// Guarded division: denominator in 1..7.
		return fmt.Sprintf("(%s / (abs(%s) %% 7 + 1))", x, y)
	case 4:
		return fmt.Sprintf("(%s %% (abs(%s) %% 9 + 1))", x, y)
	default:
		return fmt.Sprintf("abs(%s)", x)
	}
}

// boolExpr emits a random boolean expression.
func (g *progGen) boolExpr() string {
	x, y := g.intExpr(1), g.intExpr(1)
	op := []string{"<", "<=", ">", ">=", "==", "!="}[g.rng.Intn(6)]
	e := fmt.Sprintf("%s %s %s", x, op, y)
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s) & (%s %s %s)", e, g.intExpr(1), op, g.intExpr(1))
	case 1:
		return fmt.Sprintf("(%s) | (%s < %s)", e, g.intExpr(1), g.intExpr(1))
	case 2:
		return fmt.Sprintf("!(%s)", e)
	default:
		return e
	}
}

// realExpr emits a random real expression over values that stay exact in
// both VAX F and IEEE formats (dyadic rationals with bounded magnitude).
func (g *progGen) realExpr(d int) string {
	if d <= 0 || len(g.rvars) == 0 || g.rng.Intn(3) == 0 {
		if len(g.rvars) > 0 && g.rng.Intn(2) == 0 {
			return g.rvars[g.rng.Intn(len(g.rvars))]
		}
		return fmt.Sprintf("%d.%d", g.rng.Intn(16), [4]int{0, 25, 5, 75}[g.rng.Intn(4)])
	}
	x, y := g.realExpr(d-1), g.realExpr(d-1)
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("(%s + %s)", x, y)
	case 1:
		return fmt.Sprintf("(%s - %s)", x, y)
	default:
		return fmt.Sprintf("(%s * 0.5)", x)
	}
}

func (g *progGen) newVar() string {
	g.nv++
	return fmt.Sprintf("v%d", g.nv)
}

// nested emits a block body with proper lexical scoping: variables declared
// inside leave scope afterwards.
func (g *progGen) nested(body func()) {
	nv, nrv := len(g.vars), len(g.rvars)
	g.depth++
	body()
	g.depth--
	g.vars = g.vars[:nv]
	g.rvars = g.rvars[:nrv]
}

// maybeMove injects a migration at a random point.
func (g *progGen) maybeMove() {
	if g.moves && g.rng.Intn(3) == 0 {
		g.line("move self to node(%d)", g.rng.Intn(g.nnodes))
	}
}

// stmts emits n random statements.
func (g *progGen) stmts(n int) {
	for i := 0; i < n; i++ {
		g.maybeMove()
		switch g.rng.Intn(7) {
		case 0, 1:
			v := g.newVar()
			g.line("var %s: Int <- %s", v, g.intExpr(2))
			g.vars = append(g.vars, v)
		case 2:
			if len(g.vars) > 0 {
				v := g.vars[g.rng.Intn(len(g.vars))]
				g.line("%s <- %s", v, g.intExpr(2))
			}
		case 3:
			if g.depth < 2 {
				g.line("if %s then", g.boolExpr())
				g.nested(func() { g.stmts(1 + g.rng.Intn(2)) })
				if g.rng.Intn(2) == 0 {
					g.line("else")
					g.nested(func() { g.stmts(1 + g.rng.Intn(2)) })
				}
				g.line("end")
			}
		case 4:
			if g.depth < 2 {
				// The counter stays out of g.vars: a random assignment to
				// it would break termination.
				c := g.newVar()
				bound := 2 + g.rng.Intn(4)
				g.line("var %s: Int <- 0", c)
				g.line("while %s < %d do", c, bound)
				g.nested(func() {
					g.stmts(1 + g.rng.Intn(2))
					g.line("%s <- %s + 1", c, c)
				})
				g.line("end")
			}
		case 5:
			v := g.newVar()
			g.line("var %s: Real <- %s", v, g.realExpr(2))
			g.rvars = append(g.rvars, v)
		case 6:
			if len(g.rvars) > 0 {
				v := g.rvars[g.rng.Intn(len(g.rvars))]
				g.line("%s <- %s", v, g.realExpr(2))
			}
		}
	}
}

// generate builds a complete program.
func generate(seed int64, moves bool, nnodes int) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed)), moves: moves, nnodes: nnodes}
	g.b.WriteString("object M\n  operation f(a: Int, b: Int) -> (r: Int)\n")
	g.vars = []string{"a", "b"}
	g.stmts(6 + g.rng.Intn(6))
	// Fold every live variable into the result so nothing is dead.
	g.line("r <- 0")
	for _, v := range g.vars {
		g.line("r <- r * 31 + %s", v)
	}
	for _, v := range g.rvars {
		g.line("if %s < 1000000.0 then", v)
		g.line("  r <- r + 1")
		g.line("end")
	}
	if moves {
		g.line("move self to node(0)")
	}
	g.b.WriteString("  end\nend M\n")
	g.b.WriteString(`object Main
  process
    var m: M <- new M
    print(m.f(17, 0 - 23))
`)
	for _, v := range g.rvars {
		_ = v
	}
	g.b.WriteString("  end process\nend Main\n")
	return g.b.String()
}

// runNative executes src on the given machines and returns the output.
func runNative(t *testing.T, src string, machines []netsim.MachineModel) string {
	t.Helper()
	sys, err := core.RunSource(src, machines, core.Options{Mode: kernel.ModeEnhanced})
	if err != nil {
		t.Fatalf("native run: %v\nprogram:\n%s", err, src)
	}
	return sys.Output()
}

func TestDifferentialRandomPrograms(t *testing.T) {
	const trials = 60
	for seed := int64(0); seed < trials; seed++ {
		src := generate(seed, false, 1)
		info, _, err := core.CompileInfo(src)
		if err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
		s := interp.NewSource(info)
		s.Run()
		if len(s.RT().Faults) > 0 {
			t.Fatalf("seed %d: source faults %v\nprogram:\n%s", seed, s.RT().Faults, src)
		}
		want := strings.Join(s.RT().Output, "\n")

		bc := interp.NewBytecode(ir.Build(info))
		bc.Run()
		if got := strings.Join(bc.RT().Output, "\n"); got != want {
			t.Fatalf("seed %d: bytecode %q != source %q\nprogram:\n%s", seed, got, want, src)
		}
		for _, m := range []netsim.MachineModel{
			netsim.VAXstation2000, netsim.Sun3_100, netsim.SPARCstationSLC,
		} {
			if got := runNative(t, src, []netsim.MachineModel{m}); got != want {
				t.Fatalf("seed %d: native %s %q != source %q\nprogram:\n%s",
					seed, m.Name, got, want, src)
			}
		}
	}
}

func TestDifferentialRandomMigration(t *testing.T) {
	// The same generated computation, now with `move self` injected between
	// statements, run on a heterogeneous cluster: output must match the
	// single-node run of the motion-free twin (the generator emits the same
	// statements for a given seed whether or not moves are injected only if
	// the rng streams align, so compare against the moving program run on
	// one node instead — moves to node(0) are then no-ops).
	const trials = 30
	machines := []netsim.MachineModel{
		netsim.SPARCstationSLC, netsim.VAXstation2000, netsim.Sun3_100,
	}
	for seed := int64(100); seed < 100+trials; seed++ {
		src := generate(seed, true, len(machines))
		// Reference: the same program where every move is a self-move to
		// the only node (no-ops), single SPARC node. node(i) for i>0 would
		// fault on one node, so rewrite the destinations to node(0).
		ref := strings.ReplaceAll(src, "move self to node(1)", "move self to node(0)")
		ref = strings.ReplaceAll(ref, "move self to node(2)", "move self to node(0)")
		want := runNative(t, ref, []netsim.MachineModel{netsim.SPARCstationSLC})
		got := runNative(t, src, machines)
		if got != want {
			t.Fatalf("seed %d: migrated %q != reference %q\nprogram:\n%s", seed, got, want, src)
		}
	}
}
