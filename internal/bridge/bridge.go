// Package bridge implements the paper's §2.4 technique for thread mobility
// among processors executing *differently optimized* codes — the design the
// paper describes but did not prototype ("the techniques described in this
// section are not backed up by a prototype implementation"; this package is
// that prototype at the abstract-operation level).
//
// Model: a compiler starts from an abstract operation sequence (the paper's
// Figure 3 "abstract") and derives optimized instances by reversible
// primitive code-motion edits. A thread stopped at a visible program point
// of one instance has executed some prefix of that instance's operations.
// To continue in another instance, bridging code is synthesized: a fragment
// that executes exactly the operations the destination's join point expects
// but the source had not yet executed — each operation "executed exactly
// once" — after which control enters the destination code (Figure 4).
//
// The join point is chosen as the earliest destination position whose
// suffix is disjoint from the already-executed set (maximizing reuse of the
// destination's own code); the bridge runs in original program order, which
// is always a legal order since every instance is produced from the
// original by legal motions. Bridging from bridging code (a thread migrated
// again before the bridge finishes) works with the same algorithm because
// the executed set, not the code shape, is the input (§2.4, Example 3).
package bridge

import (
	"fmt"
	"strings"
)

// AbsOp is an abstract operation (the paper's o1, o2, ..., switch()).
type AbsOp string

// Code is one compiled instance of an operation sequence.
type Code struct {
	Name string
	Ops  []AbsOp
}

// String renders the instance.
func (c *Code) String() string {
	parts := make([]string, len(c.Ops))
	for i, o := range c.Ops {
		parts[i] = string(o)
	}
	return c.Name + ": " + strings.Join(parts, "; ")
}

// IndexOf returns the position of op, or -1.
func (c *Code) IndexOf(op AbsOp) int {
	for i, o := range c.Ops {
		if o == op {
			return i
		}
	}
	return -1
}

// Move is a primitive reversible code-motion edit: the operation at From
// is removed and reinserted at To (positions in the pre-edit sequence
// semantics: To is the index in the post-removal slice).
type Move struct {
	From, To int
}

// Reverse returns the inverse edit.
func (m Move) Reverse() Move { return Move{From: m.To, To: m.From} }

// Apply performs the edit on a copy of ops.
func (m Move) Apply(ops []AbsOp) ([]AbsOp, error) {
	n := len(ops)
	if m.From < 0 || m.From >= n || m.To < 0 || m.To >= n {
		return nil, fmt.Errorf("bridge: move %d->%d outside code of %d ops", m.From, m.To, n)
	}
	out := make([]AbsOp, 0, n)
	out = append(out, ops[:m.From]...)
	out = append(out, ops[m.From+1:]...)
	rest := append([]AbsOp(nil), out[m.To:]...)
	out = append(out[:m.To:m.To], ops[m.From])
	out = append(out, rest...)
	return out, nil
}

// Optimize derives an instance from original by a sequence of primitive
// code motions, recording the edits (the compiler support §2.4 calls for:
// "a specification of how to construct the bridging code ... in terms of
// primitive code editing operations").
func Optimize(original *Code, name string, edits []Move) (*Code, error) {
	ops := append([]AbsOp(nil), original.Ops...)
	var err error
	for _, e := range edits {
		ops, err = e.Apply(ops)
		if err != nil {
			return nil, err
		}
	}
	out := &Code{Name: name, Ops: ops}
	if err := sameOps(original, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Unoptimize reverses the edit sequence, recovering the original — the
// reversibility property §2.4 relies on.
func Unoptimize(optimized *Code, name string, edits []Move) (*Code, error) {
	rev := make([]Move, len(edits))
	for i, e := range edits {
		rev[len(edits)-1-i] = e.Reverse()
	}
	return Optimize(optimized, name, rev)
}

// sameOps verifies two instances are permutations of each other.
func sameOps(a, b *Code) error {
	if len(a.Ops) != len(b.Ops) {
		return fmt.Errorf("bridge: %s and %s have different lengths", a.Name, b.Name)
	}
	count := map[AbsOp]int{}
	for _, o := range a.Ops {
		count[o]++
		if count[o] > 1 {
			return fmt.Errorf("bridge: duplicate op %s in %s", o, a.Name)
		}
	}
	for _, o := range b.Ops {
		count[o]--
		if count[o] < 0 {
			return fmt.Errorf("bridge: op %s of %s missing from %s", o, b.Name, a.Name)
		}
	}
	return nil
}

// Plan is synthesized bridging code: execute Bridge (in order), then enter
// To at JoinIdx.
type Plan struct {
	From    *Code
	To      *Code
	Bridge  []AbsOp
	JoinIdx int
}

// String renders the plan like Figure 4.
func (p *Plan) String() string {
	parts := make([]string, len(p.Bridge))
	for i, o := range p.Bridge {
		parts[i] = string(o)
	}
	at := "<end>"
	if p.JoinIdx < len(p.To.Ops) {
		at = string(p.To.Ops[p.JoinIdx])
	}
	return fmt.Sprintf("bridge: %s; -> %s@%s", strings.Join(parts, "; "), p.To.Name, at)
}

// Build synthesizes bridging code for a thread whose executed set is the
// first stopIdx operations of from, targeting to. original fixes the legal
// execution order of bridge operations.
func Build(original, from *Code, stopIdx int, to *Code) (*Plan, error) {
	if stopIdx < 0 || stopIdx > len(from.Ops) {
		return nil, fmt.Errorf("bridge: stop %d outside %s", stopIdx, from.Name)
	}
	executed := map[AbsOp]bool{}
	for _, o := range from.Ops[:stopIdx] {
		executed[o] = true
	}
	return BuildFromSet(original, executed, to)
}

// BuildFromSet synthesizes bridging code given the set of operations the
// thread has already executed (composable: works from bridging code too).
func BuildFromSet(original *Code, executed map[AbsOp]bool, to *Code) (*Plan, error) {
	if err := validateSet(original, executed); err != nil {
		return nil, err
	}
	// Earliest join whose suffix is disjoint from the executed set.
	join := len(to.Ops)
	for q := len(to.Ops); q >= 0; q-- {
		ok := true
		for _, o := range to.Ops[q:] {
			if executed[o] {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		join = q
	}
	// Bridge = everything neither executed nor in the suffix, in original
	// program order.
	inSuffix := map[AbsOp]bool{}
	for _, o := range to.Ops[join:] {
		inSuffix[o] = true
	}
	var bridgeOps []AbsOp
	for _, o := range original.Ops {
		if !executed[o] && !inSuffix[o] {
			bridgeOps = append(bridgeOps, o)
		}
	}
	return &Plan{From: nil, To: to, Bridge: bridgeOps, JoinIdx: join}, nil
}

func validateSet(original *Code, executed map[AbsOp]bool) error {
	for o := range executed {
		if original.IndexOf(o) < 0 {
			return fmt.Errorf("bridge: executed op %s is not in the original code", o)
		}
	}
	return nil
}

// ---------------------------------------------------------------- execution

// Trace simulates executions for the exactly-once property tests: it logs
// every operation executed.
type Trace struct {
	Log []AbsOp
}

// Exec runs ops, logging them.
func (t *Trace) Exec(ops []AbsOp) {
	t.Log = append(t.Log, ops...)
}

// RunWithMigration simulates: execute from up to stopIdx, migrate using
// plan, then run the destination from the join point.
func RunWithMigration(from *Code, stopIdx int, plan *Plan) *Trace {
	t := &Trace{}
	t.Exec(from.Ops[:stopIdx])
	t.Exec(plan.Bridge)
	t.Exec(plan.To.Ops[plan.JoinIdx:])
	return t
}

// ExactlyOnce verifies the trace executed precisely the original's
// operations, each one time (order may differ — that is the point).
func (t *Trace) ExactlyOnce(original *Code) error {
	count := map[AbsOp]int{}
	for _, o := range t.Log {
		count[o]++
	}
	for _, o := range original.Ops {
		switch count[o] {
		case 0:
			return fmt.Errorf("bridge: op %s never executed", o)
		case 1:
		default:
			return fmt.Errorf("bridge: op %s executed %d times", o, count[o])
		}
		delete(count, o)
	}
	for o, c := range count {
		return fmt.Errorf("bridge: foreign op %s executed %d times", o, c)
	}
	return nil
}

// Figure3 returns the paper's running example: the abstract sequence and
// the two differently optimized instances of Figure 3.
func Figure3() (abstract, code1, code2 *Code, edits1, edits2 []Move) {
	abstract = &Code{Name: "abstract", Ops: []AbsOp{
		"o1", "o2", "o3", "switch()", "o4", "o5", "o6",
	}}
	// code1: o1; switch(); o2; o3; o4; o5; o6  — switch moved before o2/o3.
	edits1 = []Move{{From: 3, To: 1}}
	// code2: o2; o5; switch(); o4; o1; o3; o6.
	edits2 = []Move{
		{From: 1, To: 0}, // o2 first:          o2 o1 o3 sw o4 o5 o6
		{From: 5, To: 1}, // o5 second:         o2 o5 o1 o3 sw o4 o5? (o5 at idx5) -> o2 o5 o1 o3 sw o4 o6
		{From: 4, To: 2}, // switch third:      o2 o5 sw o1 o3 o4 o6
		{From: 5, To: 3}, // o4 fourth:         o2 o5 sw o4 o1 o3 o6
	}
	var err error
	code1, err = Optimize(abstract, "code1", edits1)
	if err != nil {
		panic(err)
	}
	code2, err = Optimize(abstract, "code2", edits2)
	if err != nil {
		panic(err)
	}
	return abstract, code1, code2, edits1, edits2
}
