package lexer

import (
	"testing"

	"repro/internal/lang/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := All(src)
	if len(errs) > 0 {
		t.Fatalf("lex %q: %v", src, errs[0])
	}
	var ks []token.Kind
	for _, tk := range toks {
		ks = append(ks, tk.Kind)
	}
	return ks
}

func TestOperators(t *testing.T) {
	cases := map[string]token.Kind{
		"<-": token.Assign, "->": token.Arrow, "==": token.Eq, "!=": token.NotEq,
		"<": token.Lt, "<=": token.Le, ">": token.Gt, ">=": token.Ge,
		"+": token.Plus, "-": token.Minus, "*": token.Star, "/": token.Slash,
		"%": token.Percent,
		"&": token.And, "|": token.Or, "!": token.Not,
		"(": token.LParen, ")": token.RParen, "[": token.LBracket,
		"]": token.RBracket, ",": token.Comma, ":": token.Colon, ".": token.Dot,
	}
	for src, want := range cases {
		got := kinds(t, src)
		if got[0] != want {
			t.Errorf("lex %q = %v, want %v", src, got[0], want)
		}
	}
}

func TestKeywordsVsIdents(t *testing.T) {
	toks, errs := All("object objects Move move end endx")
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	want := []token.Kind{token.KwObject, token.Ident, token.Ident, token.KwMove,
		token.KwEnd, token.Ident, token.EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, errs := All("0 42 3.14 7.0 5.size")
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	want := []struct {
		kind token.Kind
		lit  string
	}{
		{token.Int, "0"}, {token.Int, "42"}, {token.Real, "3.14"},
		{token.Real, "7.0"}, {token.Int, "5"}, {token.Dot, ""}, {token.Ident, "size"},
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || (w.lit != "" && toks[i].Lit != w.lit) {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Lit, w.kind, w.lit)
		}
	}
}

func TestStrings(t *testing.T) {
	toks, errs := All(`"hello" "a\nb" "q\"t" "back\\slash" "tab\there"`)
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	want := []string{"hello", "a\nb", `q"t`, `back\slash`, "tab\there"}
	for i, w := range want {
		if toks[i].Kind != token.String || toks[i].Lit != w {
			t.Errorf("string %d = %q, want %q", i, toks[i].Lit, w)
		}
	}
}

func TestStringErrors(t *testing.T) {
	for _, src := range []string{`"abc`, "\"ab\ncd\"", `"bad \q esc"`} {
		_, errs := All(src)
		if len(errs) == 0 {
			t.Errorf("lex %q: expected error", src)
		}
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a // comment with object end\nb // another\nc")
	want := []token.Kind{token.Ident, token.Ident, token.Ident, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	toks, _ := All("a\n  bb\n\tc")
	wantPos := []token.Pos{{Line: 1, Col: 1}, {Line: 2, Col: 3}, {Line: 3, Col: 2}}
	for i, w := range wantPos {
		if toks[i].Pos != w {
			t.Errorf("token %d at %v, want %v", i, toks[i].Pos, w)
		}
	}
}

func TestSingleEquals(t *testing.T) {
	_, errs := All("a = b")
	if len(errs) == 0 {
		t.Fatal("expected error for '='")
	}
}

func TestIllegalChar(t *testing.T) {
	toks, errs := All("a $ b")
	if len(errs) != 1 {
		t.Fatalf("want 1 error, got %v", errs)
	}
	if toks[1].Kind != token.Illegal {
		t.Errorf("token 1 = %v, want Illegal", toks[1].Kind)
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("x")
	l.Next()
	for i := 0; i < 3; i++ {
		if tk := l.Next(); tk.Kind != token.EOF {
			t.Fatalf("Next() after end = %v, want EOF", tk.Kind)
		}
	}
}

func TestArrowVsMinus(t *testing.T) {
	got := kinds(t, "a -> b - c -d")
	want := []token.Kind{token.Ident, token.Arrow, token.Ident, token.Minus,
		token.Ident, token.Minus, token.Ident, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAssignVsLess(t *testing.T) {
	got := kinds(t, "a <- b < c <= d")
	want := []token.Kind{token.Ident, token.Assign, token.Ident, token.Lt,
		token.Ident, token.Le, token.Ident, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}
