package busstop

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func mkStops() []Info {
	return []Info{
		{Stop: 0, PC: 10, Kind: KindCall, Pushes: true, ResultKind: ir.VKInt,
			TempDepth: 1, TempKinds: []ir.VK{ir.VKPtr}},
		{Stop: 1, PC: 25, Kind: KindLoopBottom},
		{Stop: 2, PC: 31, Kind: KindMonExit, ExitOnly: true},
		{Stop: 3, PC: 40, Kind: KindSyscall, Pushes: true, ResultKind: ir.VKPtr},
	}
}

func TestTableLookups(t *testing.T) {
	tbl, err := NewTable(mkStops())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 4 {
		t.Fatalf("len = %d", tbl.Len())
	}
	s, err := tbl.ByStop(0)
	if err != nil || s.PC != 10 || !s.Pushes {
		t.Errorf("ByStop(0) = %+v, %v", s, err)
	}
	s, err = tbl.ByPC(25)
	if err != nil || s.Stop != 1 || s.Kind != KindLoopBottom {
		t.Errorf("ByPC(25) = %+v, %v", s, err)
	}
	if _, err := tbl.ByStop(9); err == nil {
		t.Error("ByStop out of range must fail")
	}
	if _, err := tbl.ByPC(11); err == nil {
		t.Error("ByPC of a non-stop must fail")
	}
}

func TestExitOnlySemantics(t *testing.T) {
	tbl, err := NewTable(mkStops())
	if err != nil {
		t.Fatal(err)
	}
	// Number -> PC conversion works (a thread may arrive at an exit-only
	// stop from another architecture)...
	s, err := tbl.ByStop(2)
	if err != nil || s.PC != 31 {
		t.Errorf("ByStop(2) = %+v, %v", s, err)
	}
	// ...but the local runtime never observes the PC.
	if _, err := tbl.ByPC(31); err == nil {
		t.Error("ByPC of an exit-only stop must fail")
	}
}

func TestNewTableValidation(t *testing.T) {
	bad := mkStops()
	bad[1].Stop = 7
	if _, err := NewTable(bad); err == nil {
		t.Error("misnumbered stops accepted")
	}
	dup := mkStops()
	dup[1].PC = 10
	if _, err := NewTable(dup); err == nil {
		t.Error("duplicate PCs accepted")
	}
}

func TestIsomorphic(t *testing.T) {
	a, _ := NewTable(mkStops())
	// Same structure, different PCs: isomorphic (that is the point).
	other := mkStops()
	for i := range other {
		other[i].PC += 1000
	}
	b, _ := NewTable(other)
	if err := Isomorphic(a, b); err != nil {
		t.Errorf("differing PCs must stay isomorphic: %v", err)
	}
	// Different temp depth: not isomorphic.
	other = mkStops()
	other[0].TempDepth = 2
	other[0].TempKinds = []ir.VK{ir.VKPtr, ir.VKInt}
	c, _ := NewTable(other)
	if err := Isomorphic(a, c); err == nil {
		t.Error("temp mismatch must break isomorphism")
	}
	// Different length: not isomorphic.
	d, _ := NewTable(mkStops()[:3])
	if err := Isomorphic(a, d); err == nil {
		t.Error("length mismatch must break isomorphism")
	}
	// Different kind: not isomorphic.
	other = mkStops()
	other[1].Kind = KindSyscall
	e, _ := NewTable(other)
	if err := Isomorphic(a, e); err == nil {
		t.Error("kind mismatch must break isomorphism")
	}
}

func TestByPCAnyAcceptsExitOnly(t *testing.T) {
	tbl, err := NewTable(mkStops())
	if err != nil {
		t.Fatal(err)
	}
	// The migration path converts an arriving thread's stop number through
	// ByPCAny, which must accept exit-only stops...
	s, err := tbl.ByPCAny(31)
	if err != nil || s.Stop != 2 || !s.ExitOnly {
		t.Errorf("ByPCAny(31) = %+v, %v", s, err)
	}
	// ...and still reject PCs that are no stop at all.
	if _, err := tbl.ByPCAny(32); err == nil {
		t.Error("ByPCAny of a non-stop must fail")
	}
}

func TestIsomorphicFieldMismatches(t *testing.T) {
	a, _ := NewTable(mkStops())
	cases := map[string]func([]Info){
		"pushes":     func(s []Info) { s[0].Pushes = false },
		"resultkind": func(s []Info) { s[0].ResultKind = ir.VKPtr },
		"tempkind":   func(s []Info) { s[0].TempKinds[0] = ir.VKInt },
	}
	for name, mutate := range cases {
		other := mkStops()
		mutate(other)
		b, err := NewTable(other)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Isomorphic(a, b); err == nil {
			t.Errorf("%s mismatch must break isomorphism", name)
		}
	}
	// ExitOnly and PC are machine-dependent: differing there stays isomorphic.
	other := mkStops()
	other[2].ExitOnly = false
	b, _ := NewTable(other)
	if err := Isomorphic(a, b); err != nil {
		t.Errorf("exit-only is per-ISA and must not break isomorphism: %v", err)
	}
}

// TestAllIsACopy: mutating the slice All returns — including the nested
// TempKinds — must not affect the table. The analysis passes depend on this
// to model corruptions without corrupting.
func TestAllIsACopy(t *testing.T) {
	tbl, err := NewTable(mkStops())
	if err != nil {
		t.Fatal(err)
	}
	got := tbl.All()
	got[0].TempDepth = 99
	got[0].TempKinds[0] = ir.VKInt
	got[1].Kind = KindCall
	s, _ := tbl.ByStop(0)
	if s.TempDepth != 1 || s.TempKinds[0] != ir.VKPtr {
		t.Errorf("mutation through All() reached the table: %+v", s)
	}
	if s, _ := tbl.ByStop(1); s.Kind != KindLoopBottom {
		t.Errorf("mutation through All() reached the table: %+v", s)
	}
}

// TestNewTableCopiesInput: mutating the caller's slice after NewTable must
// not skew the table.
func TestNewTableCopiesInput(t *testing.T) {
	stops := mkStops()
	tbl, err := NewTable(stops)
	if err != nil {
		t.Fatal(err)
	}
	stops[0].Kind = KindSyscall
	stops[0].TempDepth = 7
	stops[0].TempKinds[0] = ir.VKInt
	if s, _ := tbl.ByStop(0); s.Kind != KindCall || s.TempDepth != 1 || s.TempKinds[0] != ir.VKPtr {
		t.Errorf("mutation of the input slice reached the table: %+v", s)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindCall: "call", KindSyscall: "syscall",
		KindLoopBottom: "loop", KindMonExit: "monexit",
	} {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", k, k.String(), want)
		}
	}
}

func TestQuickBijection(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	prop := func(pcs []uint16, exitMask uint8) bool {
		// Build a table from distinct PCs.
		seen := map[uint32]bool{}
		var stops []Info
		for i, pc := range pcs {
			p := uint32(pc) + 1 // PC 0 is never a stop
			if seen[p] {
				continue
			}
			seen[p] = true
			stops = append(stops, Info{
				Stop: len(stops), PC: p,
				Kind:     Kind(i % 4),
				ExitOnly: Kind(i%4) == KindMonExit && exitMask&(1<<(i%8)) != 0,
			})
		}
		tbl, err := NewTable(stops)
		if err != nil {
			return false
		}
		for i := 0; i < tbl.Len(); i++ {
			s, err := tbl.ByStop(i)
			if err != nil {
				return false
			}
			back, err := tbl.ByPCAny(s.PC)
			if err != nil || back.Stop != i {
				return false
			}
			strict, err := tbl.ByPC(s.PC)
			if s.ExitOnly {
				if err == nil {
					return false
				}
			} else if err != nil || strict.Stop != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestSearchPCBoundaries pins the binary search's edge behavior directly:
// searchPC returns the smallest index with pcs[j] >= pc. Stop PCs in
// mkStops are 10, 25, 31, 40 (ascending after index construction).
func TestSearchPCBoundaries(t *testing.T) {
	tbl, err := NewTable(mkStops())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		pc   uint32
		want int
	}{
		{0, 0},          // far below the first stop
		{9, 0},          // just below the first stop
		{10, 0},         // exactly the first stop
		{11, 1},         // between stops 10 and 25
		{25, 1},         // exact interior hit
		{26, 2},         // between stops 25 and 31
		{40, 3},         // exactly the last stop
		{41, 4},         // just past the last stop
		{^uint32(0), 4}, // far past the last stop
	} {
		if got := tbl.searchPC(tc.pc); got != tc.want {
			t.Errorf("searchPC(%d) = %d, want %d", tc.pc, got, tc.want)
		}
	}
	empty, err := NewTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.searchPC(10); got != 0 {
		t.Errorf("empty table searchPC = %d, want 0", got)
	}
}

// TestByPCBoundaries walks ByPC and ByPCAny across every boundary class: a
// PC below the first stop, past the last, strictly between two stops, and
// the exit-only stop (PC 31 in mkStops).
func TestByPCBoundaries(t *testing.T) {
	tbl, err := NewTable(mkStops())
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range []uint32{0, 9, 11, 26, 39, 41, ^uint32(0)} {
		if _, err := tbl.ByPC(pc); err == nil {
			t.Errorf("ByPC(%d) resolved a non-stop PC", pc)
		}
		if _, err := tbl.ByPCAny(pc); err == nil {
			t.Errorf("ByPCAny(%d) resolved a non-stop PC", pc)
		}
	}
	// First and last stops resolve by exact PC.
	if s, err := tbl.ByPC(10); err != nil || s.Stop != 0 {
		t.Errorf("ByPC(10) = %+v, %v", s, err)
	}
	if s, err := tbl.ByPC(40); err != nil || s.Stop != 3 {
		t.Errorf("ByPC(40) = %+v, %v", s, err)
	}
	// The exit-only stop: ByPC refuses (local traps never produce its PC),
	// ByPCAny resolves it (migrated-in threads park there).
	if _, err := tbl.ByPC(31); err == nil {
		t.Error("ByPC(31) accepted an exit-only stop")
	}
	if s, err := tbl.ByPCAny(31); err != nil || s.Stop != 2 || !s.ExitOnly {
		t.Errorf("ByPCAny(31) = %+v, %v", s, err)
	}
	// Empty table: every lookup misses, none panic.
	empty, err := NewTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.ByPC(0); err == nil {
		t.Error("empty table ByPC(0) resolved")
	}
	if _, err := empty.ByPCAny(0); err == nil {
		t.Error("empty table ByPCAny(0) resolved")
	}
}
