// Negative fixture: the first store to x is overwritten before any read.
object Main
  process
    var x: Int <- 1
    x <- 2
    print(x)
  end process
end Main
