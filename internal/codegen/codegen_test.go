package codegen

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/busstop"
	"repro/internal/ir"
	"repro/internal/lang/parser"
	"repro/internal/lang/types"
)

func compileSrc(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := Compile(ir.Build(info))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

const counterSrc = `
object Counter
  monitor
    var count: Int <- 0
    var nonzero: Condition
    operation inc(n: Int) -> (r: Int)
      count <- count + n
      signal nonzero
      r <- count
    end inc
    operation take() -> (r: Int)
      while count == 0 do
        wait nonzero
      end
      count <- count - 1
      r <- count
    end take
  end monitor
end Counter
object Main
  var c: Counter
  initially
    c <- new Counter
  end initially
  process
    var i: Int <- 0
    while i < 10 do
      c.inc(i)
      i <- i + 1
    end
    print("sum done at ", timems())
  end process
end Main
`

func TestCompileAllArchs(t *testing.T) {
	p := compileSrc(t, counterSrc)
	if len(p.Objects) != 2 {
		t.Fatalf("objects = %d", len(p.Objects))
	}
	for _, oc := range p.Objects {
		for _, id := range arch.All() {
			ac := oc.PerArch[id]
			if ac == nil || len(ac.Funcs) != len(oc.IR.Funcs) {
				t.Fatalf("%s/%s: missing code", oc.Name, id)
			}
			for _, fc := range ac.Funcs {
				if len(fc.Code) == 0 {
					t.Errorf("%s/%s: empty code", fc.Name, id)
				}
				if err := fc.Template.Validate(); err != nil {
					t.Errorf("template: %v", err)
				}
				// All code must disassemble cleanly.
				d := arch.Disassemble(arch.SpecOf(id), fc.Code)
				if strings.Contains(d, "undecodable") {
					t.Errorf("%s/%s: undecodable code:\n%s", fc.Name, id, d)
				}
			}
		}
	}
}

func TestCodeOIDsDeterministic(t *testing.T) {
	p1 := compileSrc(t, counterSrc)
	p2 := compileSrc(t, counterSrc)
	for i := range p1.Objects {
		if p1.Objects[i].CodeOID != p2.Objects[i].CodeOID {
			t.Errorf("OID mismatch for %s", p1.Objects[i].Name)
		}
	}
	if p1.Objects[0].CodeOID == p1.Objects[1].CodeOID {
		t.Error("distinct objects share a code OID")
	}
}

func TestBusStopIsomorphismAndDifferingPCs(t *testing.T) {
	p := compileSrc(t, counterSrc)
	main := p.Object("Main")
	procIdx := main.FuncIndex("$process")
	var tables []*busstop.Table
	for _, id := range arch.All() {
		tables = append(tables, main.PerArch[id].Funcs[procIdx].Stops)
	}
	for i := 1; i < len(tables); i++ {
		if err := busstop.Isomorphic(tables[0], tables[i]); err != nil {
			t.Fatalf("isomorphism: %v", err)
		}
	}
	if tables[0].Len() < 3 {
		t.Fatalf("too few stops: %d", tables[0].Len())
	}
	// PCs for the same stop must differ somewhere across architectures —
	// that is the whole point of the machine-independent numbering.
	differ := false
	for n := 0; n < tables[0].Len(); n++ {
		a, _ := tables[0].ByStop(n)
		b, _ := tables[1].ByStop(n)
		c, _ := tables[2].ByStop(n)
		if a.PC != b.PC || b.PC != c.PC {
			differ = true
		}
	}
	if !differ {
		t.Error("all bus-stop PCs identical across architectures")
	}
}

func TestCodeSizesAndInstrCountsDiffer(t *testing.T) {
	p := compileSrc(t, counterSrc)
	inc := p.Object("Counter")
	idx := inc.FuncIndex("inc")
	sizes := map[arch.ID]int{}
	counts := map[arch.ID]int{}
	for _, id := range arch.All() {
		fc := inc.PerArch[id].Funcs[idx]
		sizes[id] = len(fc.Code)
		counts[id] = fc.NumInstrs
	}
	if sizes[arch.VAX] == sizes[arch.M68K] && sizes[arch.M68K] == sizes[arch.SPARC] {
		t.Errorf("identical code sizes: %v", sizes)
	}
	if counts[arch.SPARC] <= counts[arch.VAX] {
		t.Errorf("RISCification missing: sparc %d instrs vs vax %d", counts[arch.SPARC], counts[arch.VAX])
	}
}

func TestRegisterHomesDifferPerArch(t *testing.T) {
	p := compileSrc(t, `
object M
  operation f(a: Int, b: Int, c: Int, d: Int, e: Int, g: Int, h: Int) -> (r: Int)
    r <- a + b + c + d + e + g + h
  end
end M
`)
	m := p.Object("M")
	idx := m.FuncIndex("f")
	vax := m.PerArch[arch.VAX].Funcs[idx].Template
	m68k := m.PerArch[arch.M68K].Funcs[idx].Template
	sparc := m.PerArch[arch.SPARC].Funcs[idx].Template
	// Variable 5 ("g"): register on SPARC (8 homes) and M68K (6 homes),
	// memory on VAX (4 homes).
	if vax.Vars[5].InReg {
		t.Error("vax: var 5 should be in memory")
	}
	if !m68k.Vars[5].InReg || !sparc.Vars[5].InReg {
		t.Error("m68k/sparc: var 5 should be a register home")
	}
	// Variable 7 ("r"): memory on M68K, register on SPARC.
	if m68k.Vars[7].InReg || !sparc.Vars[7].InReg {
		t.Errorf("var 7 homes wrong: m68k=%v sparc=%v", m68k.Vars[7], sparc.Vars[7])
	}
	if len(vax.SavedRegs) != 4 || len(m68k.SavedRegs) != 6 || len(sparc.SavedRegs) != 8 {
		t.Errorf("saved regs: %d/%d/%d", len(vax.SavedRegs), len(m68k.SavedRegs), len(sparc.SavedRegs))
	}
}

func TestActivationLayoutsDiffer(t *testing.T) {
	p := compileSrc(t, counterSrc)
	m := p.Object("Main")
	idx := m.FuncIndex("$process")
	vax := m.PerArch[arch.VAX].Funcs[idx].Template
	m68k := m.PerArch[arch.M68K].Funcs[idx].Template
	sparc := m.PerArch[arch.SPARC].Funcs[idx].Template
	if vax.SavedFPOff == m68k.SavedFPOff && m68k.SavedFPOff == sparc.SavedFPOff &&
		vax.RetPCOff == m68k.RetPCOff {
		t.Error("activation record field order identical across ISAs")
	}
}

func TestMonitorExitStops(t *testing.T) {
	p := compileSrc(t, counterSrc)
	c := p.Object("Counter")
	idx := c.FuncIndex("inc")
	findMonExit := func(tbl *busstop.Table) (busstop.Info, bool) {
		for _, s := range tbl.All() {
			if s.Kind == busstop.KindMonExit {
				return s, true
			}
		}
		return busstop.Info{}, false
	}
	vaxStop, ok := findMonExit(c.PerArch[arch.VAX].Funcs[idx].Stops)
	if !ok || !vaxStop.ExitOnly {
		t.Errorf("vax monexit stop = %+v, want exit-only", vaxStop)
	}
	for _, id := range []arch.ID{arch.M68K, arch.SPARC} {
		s, ok := findMonExit(c.PerArch[id].Funcs[idx].Stops)
		if !ok || s.ExitOnly {
			t.Errorf("%s monexit stop = %+v, want non-exit-only syscall", id, s)
		}
	}
	// The VAX generates an UNLINKQ instruction; others a monexit trap.
	vaxAsm := arch.Disassemble(arch.VAXSpec, c.PerArch[arch.VAX].Funcs[idx].Code)
	if !strings.Contains(vaxAsm, "unlq") {
		t.Errorf("vax inc lacks unlq:\n%s", vaxAsm)
	}
	m68kAsm := arch.Disassemble(arch.M68KSpec, c.PerArch[arch.M68K].Funcs[idx].Code)
	if !strings.Contains(m68kAsm, "trap monexit") {
		t.Errorf("m68k inc lacks monexit trap:\n%s", m68kAsm)
	}
}

func TestCallStopRecordsTemps(t *testing.T) {
	p := compileSrc(t, `
object A
  operation f(x: Int) -> (r: Int)
    r <- x
  end
end A
object M
  process
    var a: A <- new A
    var total: Int <- a.f(1) + a.f(2)
    print(total)
  end process
end M
`)
	m := p.Object("M")
	idx := m.FuncIndex("$process")
	for _, id := range arch.All() {
		tbl := m.PerArch[id].Funcs[idx].Stops
		var callStops []busstop.Info
		for _, s := range tbl.All() {
			if s.Kind == busstop.KindCall {
				callStops = append(callStops, s)
			}
		}
		if len(callStops) != 2 {
			t.Fatalf("%s: %d call stops", id, len(callStops))
		}
		// At the second call, the first call's integer result is a live
		// temporary.
		s := callStops[1]
		if s.TempDepth != 1 || len(s.TempKinds) != 1 || s.TempKinds[0] != ir.VKInt {
			t.Errorf("%s: second call stop temps = depth %d kinds %v", id, s.TempDepth, s.TempKinds)
		}
		if !s.Pushes || s.ResultKind != ir.VKInt {
			t.Errorf("%s: call stop result: pushes=%v kind=%v", id, s.Pushes, s.ResultKind)
		}
	}
}

func TestByPCRejectsExitOnly(t *testing.T) {
	p := compileSrc(t, counterSrc)
	c := p.Object("Counter")
	idx := c.FuncIndex("inc")
	tbl := c.PerArch[arch.VAX].Funcs[idx].Stops
	for _, s := range tbl.All() {
		if s.Kind == busstop.KindMonExit {
			if _, err := tbl.ByPC(s.PC); err == nil {
				t.Error("ByPC should reject exit-only stops")
			}
			if got, err := tbl.ByStop(s.Stop); err != nil || got.PC != s.PC {
				t.Error("ByStop must still resolve exit-only stops (arriving threads)")
			}
		}
	}
}

func TestUnreachableCodeCompiles(t *testing.T) {
	p := compileSrc(t, `
object M
  operation f() -> (r: Int)
    loop
      r <- r + 1
    end
  end
end M
`)
	// The trailing implicit ret is unreachable; compilation must still
	// produce decodable code on every arch.
	m := p.Object("M")
	for _, id := range arch.All() {
		fc := m.PerArch[id].Funcs[m.FuncIndex("f")]
		if strings.Contains(arch.Disassemble(arch.SpecOf(id), fc.Code), "undecodable") {
			t.Errorf("%s: unreachable lowering broke decoding", id)
		}
	}
}

func TestStringsPoolShared(t *testing.T) {
	p := compileSrc(t, `
object M
  process
    print("hello")
    print("hello", "world")
  end process
end M
`)
	fc := p.Object("M").PerArch[arch.VAX].Funcs[p.Object("M").FuncIndex("$process")]
	count := 0
	for _, s := range fc.Strings {
		if s == "hello" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("string pool has %d copies of \"hello\"", count)
	}
}

func TestOmitLoopPollsOption(t *testing.T) {
	src := `
object M
  operation f() -> (r: Int)
    var i: Int <- 0
    while i < 5 do
      i <- i + 1
    end
    r <- i
  end
end M
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	with, err := CompileWithOptions(ir.Build(info), Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := CompileWithOptions(ir.Build(info), Options{OmitLoopPolls: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range arch.All() {
		fw := with.Object("M").PerArch[id].Funcs[0]
		fo := without.Object("M").PerArch[id].Funcs[0]
		if fo.Stops.Len() != fw.Stops.Len()-1 {
			t.Errorf("%s: stops %d -> %d, want exactly one loop stop removed",
				id, fw.Stops.Len(), fo.Stops.Len())
		}
		for _, s := range fo.Stops.All() {
			if s.Kind == busstop.KindLoopBottom {
				t.Errorf("%s: loop-bottom stop survived the ablation", id)
			}
		}
		if fo.NumInstrs >= fw.NumInstrs {
			t.Errorf("%s: poll instructions not removed (%d vs %d)", id, fo.NumInstrs, fw.NumInstrs)
		}
	}
}

func TestCustomSpecsOption(t *testing.T) {
	src := `
object M
  operation f(a: Int, b: Int, c: Int) -> (r: Int)
    r <- a + b + c
  end
end M
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	noHomes := *arch.SPARCSpec
	noHomes.HomeRegs = nil
	p, err := CompileWithOptions(ir.Build(info), Options{Specs: []*arch.Spec{&noHomes}})
	if err != nil {
		t.Fatal(err)
	}
	tmpl := p.Object("M").PerArch[arch.SPARC].Funcs[0].Template
	for i, h := range tmpl.Vars {
		if h.InReg {
			t.Errorf("var %d still has a register home", i)
		}
	}
	if len(tmpl.SavedRegs) != 0 {
		t.Errorf("saved regs = %v, want none", tmpl.SavedRegs)
	}
	// Other architectures were not compiled.
	if p.Object("M").PerArch[arch.VAX] != nil {
		t.Error("unrequested architecture compiled")
	}
}
