package dir

import (
	"testing"

	"repro/internal/oid"
)

func TestNormalizeAndQuorum(t *testing.T) {
	c := Config{Replicas: 9, Shards: 0}.Normalize(4)
	if c.Replicas != 4 || c.Shards != 4 {
		t.Fatalf("normalize clamped to %+v", c)
	}
	if q := (Config{Replicas: 3}).Quorum(); q != 2 {
		t.Fatalf("quorum(3) = %d", q)
	}
	if q := (Config{Replicas: 1}).Quorum(); q != 1 {
		t.Fatalf("quorum(1) = %d", q)
	}
	if q := (Config{Replicas: 4}).Quorum(); q != 3 {
		t.Fatalf("quorum(4) = %d", q)
	}
}

func TestReplicaSetWraps(t *testing.T) {
	got := ReplicaSet(3, 3, 4)
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("replica set %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replica set %v, want %v", got, want)
		}
	}
}

func TestAcceptorPromiseOrdering(t *testing.T) {
	var a Acceptor
	ok, _, accBal, _ := a.Prepare(10)
	if !ok || accBal != 0 {
		t.Fatalf("first prepare refused")
	}
	if ok, promised, _, _ := a.Prepare(5); ok || promised != 10 {
		t.Fatalf("lower prepare accepted (ok=%v promised=%d)", ok, promised)
	}
	if ok, _ := a.Accept(10, 2); !ok {
		t.Fatalf("accept at promised ballot refused")
	}
	// A later prepare must surface the accepted value.
	ok, _, accBal, accNode := a.Prepare(20)
	if !ok || accBal != 10 || accNode != 2 {
		t.Fatalf("prepare(20) = ok=%v accBal=%d accNode=%d", ok, accBal, accNode)
	}
	// An accept below the new promise is refused.
	if ok, _ := a.Accept(10, 3); ok {
		t.Fatalf("stale accept succeeded")
	}
}

func TestStoreLearnMonotoneEpoch(t *testing.T) {
	s := NewStore()
	o := oid.ForRuntime(0, 1)
	if !s.Learn(o, 2, 1) {
		t.Fatalf("first learn rejected")
	}
	if s.Learn(o, 3, 1) {
		t.Fatalf("equal-epoch learn overwrote")
	}
	if s.Learn(o, 3, 0) {
		t.Fatalf("older-epoch learn overwrote")
	}
	if !s.Learn(o, 3, 2) {
		t.Fatalf("newer-epoch learn rejected")
	}
	r, ok := s.Lookup(o)
	if !ok || r.Node != 3 || r.Epoch != 2 {
		t.Fatalf("lookup = %+v ok=%v", r, ok)
	}
	if _, ok := s.Lookup(oid.ForRuntime(1, 9)); ok {
		t.Fatalf("lookup of unknown object hit")
	}
}

func TestProposalHappyPath(t *testing.T) {
	p := NewProposal(Slot{OID: 5, Epoch: 2}, 3, 0, 2)
	b := p.Start()
	if b == 0 {
		t.Fatalf("zero ballot")
	}
	if p.OnPromise(b, true, 0, -1, 0) {
		t.Fatalf("quorum after one promise")
	}
	if !p.OnPromise(b, true, 0, -1, 0) {
		t.Fatalf("no quorum after two promises")
	}
	if v := p.ChosenValue(); v != 3 {
		t.Fatalf("chose %d, want own value 3", v)
	}
	if p.OnAccepted(b, true, 0) {
		t.Fatalf("chosen after one accept")
	}
	if !p.OnAccepted(b, true, 0) {
		t.Fatalf("not chosen after quorum accepts")
	}
	if !p.Done() {
		t.Fatalf("not done after chosen")
	}
}

func TestProposalAdoptsAcceptedValue(t *testing.T) {
	p := NewProposal(Slot{OID: 5, Epoch: 2}, 3, 0, 2)
	b := p.Start()
	p.OnPromise(b, true, 7, 1, 0) // a replica already accepted value 1 at ballot 7
	p.OnPromise(b, true, 0, -1, 0)
	if v := p.ChosenValue(); v != 1 {
		t.Fatalf("chose %d, want adopted value 1", v)
	}
}

func TestProposalRestartJumpsNacks(t *testing.T) {
	p := NewProposal(Slot{OID: 5, Epoch: 2}, 3, 0, 2)
	b := p.Start()
	// Nacked: someone promised a much higher ballot.
	if p.OnPromise(b, false, 0, -1, 99<<16) {
		t.Fatalf("nack advanced phase")
	}
	b2 := p.Start()
	if b2 <= 99<<16 {
		t.Fatalf("restart ballot %d did not jump past nacked ballot", b2)
	}
	// Stale replies from the old round are ignored.
	if p.OnPromise(b, true, 0, -1, 0) {
		t.Fatalf("stale-round promise counted")
	}
	if !p.OnPromise(b2, true, 0, -1, 0) || p.Done() {
		// first promise of round 2; need one more
		if p.Done() {
			t.Fatalf("done too early")
		}
	}
}

func TestProposalDistinctBallotsPerNode(t *testing.T) {
	a := NewProposal(Slot{OID: 1, Epoch: 1}, 0, 0, 1).Start()
	b := NewProposal(Slot{OID: 1, Epoch: 1}, 0, 1, 1).Start()
	if a == b {
		t.Fatalf("two proposers issued the same ballot %d", a)
	}
}

func TestShardOfStable(t *testing.T) {
	o := oid.ForRuntime(2, 7)
	if ShardOf(o, 4) != ShardOf(o, 4) {
		t.Fatalf("shard not stable")
	}
	if s := ShardOf(o, 4); s < 0 || s > 3 {
		t.Fatalf("shard %d out of range", s)
	}
}

func TestNormalizeDiagEdges(t *testing.T) {
	// Replicas above the cluster size clamp with a diagnostic.
	c, diags := Config{Replicas: 9}.NormalizeDiag(4)
	if c.Replicas != 4 || len(diags) != 1 {
		t.Fatalf("over-cluster: cfg=%+v diags=%v", c, diags)
	}
	// Negative replicas are invalid and fall back to 1, with a diagnostic.
	c, diags = Config{Replicas: -3}.NormalizeDiag(4)
	if c.Replicas != 1 || len(diags) != 1 {
		t.Fatalf("negative: cfg=%+v diags=%v", c, diags)
	}
	// Zero is the documented "default" request: no diagnostic.
	c, diags = Config{Replicas: 0, Shards: 0}.NormalizeDiag(4)
	if c.Replicas != 1 || c.Shards != 4 || len(diags) != 0 {
		t.Fatalf("defaults: cfg=%+v diags=%v", c, diags)
	}
	// Shard edges mirror the replica edges.
	c, diags = Config{Replicas: 2, Shards: 9}.NormalizeDiag(4)
	if c.Shards != 4 || len(diags) != 1 {
		t.Fatalf("over-cluster shards: cfg=%+v diags=%v", c, diags)
	}
	c, diags = Config{Replicas: 2, Shards: -1}.NormalizeDiag(4)
	if c.Shards != 4 || len(diags) != 1 {
		t.Fatalf("negative shards: cfg=%+v diags=%v", c, diags)
	}
}

func TestPlaceReplicasUniformMatchesReplicaSet(t *testing.T) {
	// With no cost function (uniform topology) the locality-aware placement
	// must reproduce the historic consecutive sets exactly, for every shard
	// and replica count.
	for nodes := 1; nodes <= 6; nodes++ {
		for replicas := 1; replicas <= nodes; replicas++ {
			for shard := 0; shard < nodes; shard++ {
				got := PlaceReplicas(shard, replicas, nodes, nil)
				want := ReplicaSet(shard, replicas, nodes)
				if len(got) != len(want) {
					t.Fatalf("n=%d r=%d s=%d: %v vs %v", nodes, replicas, shard, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d r=%d s=%d: %v vs %v", nodes, replicas, shard, got, want)
					}
				}
			}
		}
	}
}

func TestPlaceReplicasPrefersLowLatencyPeers(t *testing.T) {
	// 5 nodes; node 0's link to node 1 is slow, its link to node 3 fast.
	// The shard anchored at 0 should seat node 3 ahead of nodes 1 and 2.
	slow := map[[2]int]int64{{0, 1}: 500, {0, 2}: 200, {0, 4}: 900}
	cost := func(a, b int) int64 {
		if a > b {
			a, b = b, a
		}
		return slow[[2]int{a, b}]
	}
	got := PlaceReplicas(0, 3, 5, cost)
	want := []int{0, 2, 3} // anchor 0, then node 3 (cost 0) and node 2 (cost 200)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("placement %v, want %v", got, want)
		}
	}
	// The anchor is always a member even when its links are all expensive.
	got = PlaceReplicas(4, 2, 5, cost)
	found := false
	for _, n := range got {
		if n == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("anchor 4 missing from %v", got)
	}
}

func TestGroupProposalSortsAndChooses(t *testing.T) {
	// Slots arrive unsorted; the proposal canonicalizes them with their
	// values kept parallel.
	slots := []Slot{{OID: 9, Epoch: 1}, {OID: 3, Epoch: 2}, {OID: 3, Epoch: 1}}
	vals := []int32{2, 3, 1}
	g := NewGroupProposal(slots, vals, 0, 2)
	wantSlots := []Slot{{OID: 3, Epoch: 1}, {OID: 3, Epoch: 2}, {OID: 9, Epoch: 1}}
	wantVals := []int32{1, 3, 2}
	for i := range wantSlots {
		if g.Slots[i] != wantSlots[i] || g.Values[i] != wantVals[i] {
			t.Fatalf("canonical order %v %v", g.Slots, g.Values)
		}
	}
	b := g.Start()
	none := []uint64{0, 0, 0}
	noneV := []int32{-1, -1, -1}
	if g.OnPromise(b, true, none, noneV, 0) {
		t.Fatalf("quorum after one promise")
	}
	if !g.OnPromise(b, true, none, noneV, 0) {
		t.Fatalf("no quorum after two promises")
	}
	cv := g.ChosenValues()
	for i := range wantVals {
		if cv[i] != wantVals[i] {
			t.Fatalf("chose %v, want own values %v", cv, wantVals)
		}
	}
	if g.OnAccepted(b, true, 0) {
		t.Fatalf("chosen after one accept")
	}
	if !g.OnAccepted(b, true, 0) || !g.Done() {
		t.Fatalf("not chosen after quorum accepts")
	}
}

func TestGroupProposalAdoptsPerSlot(t *testing.T) {
	g := NewGroupProposal([]Slot{{OID: 1, Epoch: 1}, {OID: 2, Epoch: 1}}, []int32{3, 3}, 0, 2)
	b := g.Start()
	// One replica already accepted value 1 for the second slot at ballot 7.
	g.OnPromise(b, true, []uint64{0, 7}, []int32{-1, 1}, 0)
	g.OnPromise(b, true, []uint64{0, 0}, []int32{-1, -1}, 0)
	cv := g.ChosenValues()
	if cv[0] != 3 || cv[1] != 1 {
		t.Fatalf("chose %v, want [3 1]", cv)
	}
}

func TestGroupProposalNackAndRestart(t *testing.T) {
	g := NewGroupProposal([]Slot{{OID: 1, Epoch: 1}, {OID: 2, Epoch: 1}}, []int32{3, 3}, 0, 2)
	b := g.Start()
	if g.OnPromise(b, false, nil, nil, 50<<16) {
		t.Fatalf("nack advanced phase")
	}
	b2 := g.Start()
	if b2 <= 50<<16 {
		t.Fatalf("restart ballot %d did not jump past nack", b2)
	}
	// Stale and malformed replies are ignored.
	if g.OnPromise(b, true, []uint64{0, 0}, []int32{-1, -1}, 0) {
		t.Fatalf("stale-round promise counted")
	}
	if g.OnPromise(b2, true, []uint64{0}, []int32{-1}, 0) {
		t.Fatalf("short reply counted")
	}
	g.OnPromise(b2, true, []uint64{0, 0}, []int32{-1, -1}, 0)
	if !g.OnPromise(b2, true, []uint64{0, 0}, []int32{-1, -1}, 0) {
		t.Fatalf("no quorum after two fresh promises")
	}
}
