// Package netsim is a deterministic discrete-event simulation of the
// prototype's hardware substrate: workstation CPUs of different clock rates
// connected by a shared 10 Mbit/s Ethernet (Figure 1).
//
// Simulated time is in microseconds. Node CPU work is charged in cycles and
// converted to time through the node's clock rate; the network charges a
// fixed per-frame latency plus serialized transmission time on the shared
// medium. All experiment timings (Table 1) are measured in this simulated
// time, so runs are exactly reproducible.
//
// The simulator has two engines over one event order. The sequential
// engine (Run) is the reference: a single goroutine draining one heap.
// The parallel engine (RunParallel, par.go) runs each node's events on its
// own goroutine, using the network's per-frame latency as conservative
// lookahead. Both engines execute events in the same canonical total
// order — (time, node, class, per-node sequence) — which is what makes
// their observable results byte-identical (DESIGN.md §12).
package netsim

import (
	"container/heap"
	"fmt"
	"sync/atomic"
)

// Micros is a simulated time in microseconds.
type Micros int64

// MS renders a time in milliseconds.
func (m Micros) MS() float64 { return float64(m) / 1000 }

// Event classes: at one (time, node) instant, locally scheduled work runs
// before frame deliveries. The split exists because the parallel engine
// cannot reproduce a global "scheduling moment" tiebreak between a node's
// own timers and frames arbitrated on the shared medium; the class makes
// the tie a pure function of the event's origin, computable in both
// engines.
const (
	classLocal    = int8(0)
	classDelivery = int8(1)
)

type event struct {
	at    Micros
	node  int32 // owning node; -1 for setup/cluster events (sequential only)
	class int8  // classLocal or classDelivery
	seq   uint64
	weak  bool
	fn    func()
}

// less is the canonical event order both engines share: time, then node
// (cluster events first), then class (local work before deliveries), then
// scheduling sequence. Within one (node, class) the sequence numbers are
// assigned in execution order by both engines, so the whole order is
// engine-independent.
func (e *event) less(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.node != o.node {
		return e.node < o.node
	}
	if e.class != o.class {
		return e.class < o.class
	}
	return e.seq < o.seq
}

type eventHeap []*event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].less(h[j]) }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is the event queue and clock.
type Sim struct {
	now    Micros
	queue  eventHeap
	seq    uint64
	events uint64
	strong int // pending non-weak events; Run stops when this hits zero

	// par is non-nil while RunParallel owns the clock; NodeSched and the
	// Network route through it. It is installed before the node goroutines
	// start and cleared after they exit, so they never observe it changing.
	par *parRun
}

// NewSim returns an empty simulation at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulated time. During a parallel run each node
// has its own clock; use NodeSched.Now from node code.
func (s *Sim) Now() Micros { return s.now }

// Events returns the number of events processed so far.
func (s *Sim) Events() uint64 { return s.events }

// At schedules fn at now+delay (FIFO among equal times). Events scheduled
// this way belong to no node; they are fine for the sequential engine but
// RunParallel refuses them — node work must go through AtNode or a
// NodeSched so the parallel engine knows which queue owns it.
func (s *Sim) At(delay Micros, fn func()) { s.schedule(-1, delay, fn, false) }

// AtWeak schedules fn like At but weakly: weak events do not keep the
// simulation alive. Run returns once only weak events remain, so periodic
// background work (heartbeat ticks, crash/restart schedules) can re-arm
// itself without preventing termination.
func (s *Sim) AtWeak(delay Micros, fn func()) { s.schedule(-1, delay, fn, true) }

// AtNode schedules fn at now+delay on node's timeline.
func (s *Sim) AtNode(node int, delay Micros, fn func()) { s.schedule(int32(node), delay, fn, false) }

// AtNodeWeak is AtNode with weak (non-liveness-holding) semantics.
func (s *Sim) AtNodeWeak(node int, delay Micros, fn func()) { s.schedule(int32(node), delay, fn, true) }

func (s *Sim) schedule(node int32, delay Micros, fn func(), weak bool) {
	s.scheduleClass(node, classLocal, delay, fn, weak)
}

func (s *Sim) scheduleClass(node int32, class int8, delay Micros, fn func(), weak bool) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	if !weak {
		s.strong++
	}
	heap.Push(&s.queue, &event{at: s.now + delay, node: node, class: class, seq: s.seq, weak: weak, fn: fn})
}

// Step runs the next event; it reports whether one was run.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	s.events++
	if !e.weak {
		s.strong--
	}
	e.fn()
	return true
}

// Run processes events until no strong events remain (weak events left in
// the queue are abandoned) or maxEvents have run. It returns an error if
// the event budget was exhausted (livelock guard). Termination is checked
// before the budget, so a run that quiesces in exactly maxEvents events
// succeeds.
func (s *Sim) Run(maxEvents uint64) error {
	for ran := uint64(0); ; ran++ {
		if s.strong == 0 {
			s.dropAbandoned()
			return nil
		}
		if ran >= maxEvents {
			return fmt.Errorf("netsim: event budget %d exhausted at t=%v µs", maxEvents, s.now)
		}
		if !s.Step() {
			return nil
		}
	}
}

// dropAbandoned clears the weak events left behind when the simulation
// quiesces, so their closures (and anything they capture, such as pooled
// delivery buffers) become garbage instead of staying pinned by the queue.
func (s *Sim) dropAbandoned() {
	for _, e := range s.queue {
		e.fn = nil
	}
	s.queue = s.queue[:0]
}

// PendingEvents reports how many events are still queued (after Run this
// counts only abandoned work; the quiesce path clears it to zero).
func (s *Sim) PendingEvents() int { return len(s.queue) }

// NodeSched is a node-owned scheduling handle: the same three operations a
// node kernel needs (clock, timer, weak timer) in both engines. In the
// sequential engine it tags events with the node on the shared heap; during
// a parallel run it routes to the node's own queue and per-node clock.
// A NodeSched must only be used from the owning node's execution context
// (its event closures), which is exactly where the kernel uses it.
type NodeSched struct {
	s    *Sim
	node int
}

// NodeSched returns node's scheduling handle.
func (s *Sim) NodeSched(node int) NodeSched { return NodeSched{s: s, node: node} }

// Now returns the owning node's current simulated time.
func (ns NodeSched) Now() Micros {
	if p := ns.s.par; p != nil {
		return p.runners[ns.node].now
	}
	return ns.s.now
}

// At schedules fn at the node's now+delay.
func (ns NodeSched) At(delay Micros, fn func()) {
	if p := ns.s.par; p != nil {
		p.runners[ns.node].at(classLocal, delay, fn, false)
		return
	}
	ns.s.schedule(int32(ns.node), delay, fn, false)
}

// AtWeak schedules fn weakly at the node's now+delay.
func (ns NodeSched) AtWeak(delay Micros, fn func()) {
	if p := ns.s.par; p != nil {
		p.runners[ns.node].at(classLocal, delay, fn, true)
		return
	}
	ns.s.schedule(int32(ns.node), delay, fn, true)
}

// ---------------------------------------------------------------- CPU model

// CPU models one workstation processor: cycles are charged and converted
// to simulated time through the clock rate; FreeAt serializes work on the
// node.
type CPU struct {
	MHz    float64
	FreeAt Micros
	Cycles uint64 // total cycles charged (for reporting)
}

// CyclesToMicros converts a cycle count to time on this CPU.
func (c *CPU) CyclesToMicros(cycles uint64) Micros {
	return Micros(float64(cycles) / c.MHz)
}

// Charge accounts cycles of work starting no earlier than `from`, returning
// the completion time.
func (c *CPU) Charge(from Micros, cycles uint64) Micros {
	if c.FreeAt > from {
		from = c.FreeAt
	}
	c.Cycles += cycles
	c.FreeAt = from + c.CyclesToMicros(cycles)
	return c.FreeAt
}

// ---------------------------------------------------------------- network

// Handler receives a delivered frame.
type Handler func(src int, payload []byte)

// Network models the shared 10 Mbit/s Ethernet: a per-frame latency plus
// serialized transmission on the single medium, with minimum frame size.
type Network struct {
	sim *Sim
	// BitsPerSecond is the raw medium rate (default 10 Mbit/s).
	BitsPerSecond float64
	// LatencyMicros is propagation plus interface latency per frame. It is
	// also the parallel engine's lookahead: a frame sent at t cannot arrive
	// before t+LatencyMicros, so nodes may run that far ahead independently.
	LatencyMicros Micros
	// MinFrameBytes pads small frames (Ethernet minimum 64 bytes).
	MinFrameBytes int
	// OverheadBytes is framing overhead added to every payload.
	OverheadBytes int

	// extraLat holds per-link additional propagation latency (symmetric,
	// keyed by the node pair), on top of the shared LatencyMicros — the
	// topology knob for latency-skewed clusters (a far segment, a slow
	// bridge). Extras only ever ADD latency, so LatencyMicros remains a
	// valid lower bound and the parallel engine's lookahead stays
	// conservative. Nil (the default) keeps every link at the shared
	// latency and the simulation byte-identical to a topology-free build.
	extraLat map[uint64]Micros

	mediumFree Micros
	handlers   map[int]Handler
	// down[i] marks node i crashed. Indexed, not a map, so that during a
	// parallel run node i's own crash/restart events and its delivery
	// closures (the only writers and readers of entry i) never share
	// memory with another node's entry.
	down []bool

	// Observer, when set, sees every frame the medium carries (the
	// observability recorder implements it; see internal/obs).
	Observer FrameObserver

	// Inject, when set, decides per-frame fault injection (drops,
	// duplicates, delays, corruption); see internal/chaos. During a
	// parallel run it is called from the sending node's goroutine, so an
	// injector must derive its randomness per (src,dst) link, not from one
	// shared stream (internal/chaos does).
	Inject Injector

	// OnLost, when set, is called when a frame is discarded at delivery
	// time because the destination node is down. During a parallel run it
	// is called on the destination node's goroutine.
	OnLost func(at Micros, src, dst int)

	// Counters.
	Frames     uint64
	Bytes      uint64
	PayloadLen uint64
	// Lost counts frames sent but never delivered (injected drops plus
	// frames addressed to down nodes); Dups counts injected duplicates.
	// Lost is updated with atomics: delivery-time discards run on node
	// goroutines in the parallel engine.
	Lost uint64
	Dups uint64
	// BusyMicros accumulates serialization time on the shared medium (the
	// network's utilization clock).
	BusyMicros Micros

	// bufs recycles delivery buffers by power-of-two size class. Send
	// copies each payload into a scratch buffer (senders may reuse their
	// marshal buffer immediately), and deliver returns the scratch to the
	// freelist after the handler runs — handlers fully consume the frame
	// synchronously — so steady-state traffic does not allocate per frame.
	// This pool is only touched by the sequential engine (one goroutine);
	// the parallel engine gives each node runner its own bufPool instead
	// of sharing one across goroutines (see par.go).
	bufs bufPool
}

const (
	bufMinClassBits = 6  // smallest delivery-buffer class: 64 B
	bufNumClasses   = 10 // classes up to 32 KB; larger frames use the top class
	bufClassKeep    = 32 // retained scratch buffers per class
)

// bufPool is a size-classed freelist of delivery scratch buffers. It is
// not safe for concurrent use: every pool is owned by exactly one event
// loop (the sequential engine's, or one parallel node runner's), and a
// buffer may migrate between pools only through an ordered hand-off (a
// frame in flight, released into its destination's pool).
type bufPool struct {
	free [bufNumClasses][][]byte
}

// grab returns a scratch buffer holding a copy of payload. Each call
// returns a distinct buffer — a duplicated frame must never alias its
// primary copy, or the first delivery's release would hand the second
// delivery's bytes back to the pool while still in flight.
func (p *bufPool) grab(payload []byte) []byte {
	c := 0
	for c < bufNumClasses-1 && 1<<(bufMinClassBits+c) < len(payload) {
		c++
	}
	if s := p.free[c]; len(s) > 0 {
		b := s[len(s)-1]
		p.free[c] = s[:len(s)-1]
		return append(b[:0], payload...)
	}
	return append(make([]byte, 0, 1<<(bufMinClassBits+c)), payload...)
}

// release returns a delivery buffer to its size-class freelist.
func (p *bufPool) release(buf []byte) {
	if cap(buf) < 1<<bufMinClassBits {
		return
	}
	c := 0
	for c < bufNumClasses-1 && cap(buf) >= 1<<(bufMinClassBits+c+1) {
		c++
	}
	if len(p.free[c]) < bufClassKeep {
		p.free[c] = append(p.free[c], buf)
	}
}

// grabBuf and releaseBuf are the sequential engine's pool accessors.
func (n *Network) grabBuf(payload []byte) []byte { return n.bufs.grab(payload) }
func (n *Network) releaseBuf(buf []byte)         { n.bufs.release(buf) }

// Verdict is a fault-injection decision for one frame in flight. The zero
// Verdict delivers the frame normally.
type Verdict struct {
	Drop       bool   // discard the frame (it still occupied the medium)
	Dup        bool   // deliver a second copy
	DupDelay   Micros // extra delay on the duplicate (min 1µs)
	ExtraDelay Micros // extra delivery delay on the primary copy
	Corrupt    bool   // flip bits in the delivered copy
	CorruptOff int    // byte offset to corrupt (mod payload length)
	CorruptXor byte   // XOR mask applied at CorruptOff
}

// Injector decides the fate of each frame the medium carries. It must be
// deterministic in (at, src, dst, payloadLen) and its own internal state,
// and that state must be partitioned per (src,dst) link so verdicts do not
// depend on how frames from different senders interleave.
type Injector interface {
	Frame(at Micros, src, dst, payloadLen int) Verdict
}

// FrameObserver receives frame-level events. xmitMicros is the frame's
// serialization time on the medium; at is the simulated send instant.
type FrameObserver interface {
	OnFrame(at int64, src, dst int, payload, frame int, xmitMicros int64)
}

// Counters is a snapshot of the network's traffic counters.
type Counters struct {
	Frames     uint64
	Bytes      uint64
	PayloadLen uint64
	BusyMicros Micros
}

// Counters returns the current traffic counters (readable at any simulated
// instant; ResetCounters zeroes them).
func (n *Network) Counters() Counters {
	return Counters{Frames: n.Frames, Bytes: n.Bytes,
		PayloadLen: n.PayloadLen, BusyMicros: n.BusyMicros}
}

// NewNetwork returns an Ethernet-like network on sim.
func NewNetwork(sim *Sim) *Network {
	return &Network{
		sim:           sim,
		BitsPerSecond: 10e6,
		LatencyMicros: 200, // interface + propagation + interrupt latency
		MinFrameBytes: 64,
		OverheadBytes: 18 + 20 + 8, // Ethernet + IP + UDP-ish headers
		handlers:      map[int]Handler{},
	}
}

// Attach registers the frame handler for node id.
func (n *Network) Attach(node int, h Handler) {
	n.handlers[node] = h
	n.growDown(node)
}

func (n *Network) growDown(node int) {
	for len(n.down) <= node {
		n.down = append(n.down, false)
	}
}

// SetNodeUp marks node id up or down. Frames addressed to a down node are
// discarded at delivery time (the sender cannot tell; fail-stop model).
func (n *Network) SetNodeUp(node int, up bool) {
	n.growDown(node)
	n.down[node] = !up
}

// NodeUp reports whether node id is currently up.
func (n *Network) NodeUp(node int) bool {
	return node < 0 || node >= len(n.down) || !n.down[node]
}

// frameSize returns the on-wire size of a payload and its serialization
// time on the medium.
func (n *Network) frameSize(payloadLen int) (size int, xmit Micros) {
	size = payloadLen + n.OverheadBytes
	if size < n.MinFrameBytes {
		size = n.MinFrameBytes
	}
	xmit = Micros(float64(size*8) / n.BitsPerSecond * 1e6)
	return size, xmit
}

// linkKey normalizes a node pair to one map key (links are symmetric).
func linkKey(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// SetLinkExtraLatency adds extra per-frame propagation latency on the link
// between a and b (both directions), on top of the shared LatencyMicros.
// Negative extras are ignored: per-link latency may only exceed the shared
// floor, never undercut it (the parallel engine's lookahead depends on it).
// Call before the simulation starts; the directory's replica placement
// reads the topology once at cluster construction.
func (n *Network) SetLinkExtraLatency(a, b int, extra Micros) {
	if extra <= 0 || a == b {
		return
	}
	if n.extraLat == nil {
		n.extraLat = map[uint64]Micros{}
	}
	n.extraLat[linkKey(a, b)] = extra
}

// LinkExtraLatency reports the extra latency configured for the a-b link
// (zero for the uniform default).
func (n *Network) LinkExtraLatency(a, b int) Micros {
	if n.extraLat == nil || a == b {
		return 0
	}
	return n.extraLat[linkKey(a, b)]
}

// arbitrate claims the shared medium for one frame: transmission begins no
// earlier than the send instant, the sender's CPU being free, and the
// medium freeing up. It returns the delivery instant. Both engines call
// this in the same canonical frame order, so mediumFree evolves
// identically.
func (n *Network) arbitrate(sendAt, earliest Micros, xmit Micros, size, payloadLen int) (deliverAt Micros) {
	n.Frames++
	n.Bytes += uint64(size)
	n.PayloadLen += uint64(payloadLen)
	n.BusyMicros += xmit
	start := sendAt
	if earliest > start {
		start = earliest
	}
	if n.mediumFree > start {
		start = n.mediumFree
	}
	n.mediumFree = start + xmit
	return n.mediumFree + n.LatencyMicros
}

// Send transmits payload from src to dst. Transmission begins no earlier
// than `earliest` (the sender's CPU finishing the marshalling work) and
// after the shared medium frees up; the frame then serializes at the medium
// rate and the per-frame latency elapses before delivery.
func (n *Network) Send(src, dst int, payload []byte, earliest Micros) error {
	if _, ok := n.handlers[dst]; !ok {
		return fmt.Errorf("netsim: no node %d attached", dst)
	}
	if p := n.sim.par; p != nil {
		return n.sendParallel(p, src, dst, payload, earliest)
	}
	h := n.handlers[dst]
	size, xmit := n.frameSize(len(payload))
	if n.Observer != nil {
		n.Observer.OnFrame(int64(n.sim.Now()), src, dst, len(payload), size, int64(xmit))
	}
	var v Verdict
	if n.Inject != nil {
		v = n.Inject.Frame(n.sim.Now(), src, dst, len(payload))
	}
	deliverAt := n.arbitrate(n.sim.Now(), earliest, xmit, size, len(payload)) + n.LinkExtraLatency(src, dst)
	if v.Drop {
		atomic.AddUint64(&n.Lost, 1)
	} else {
		buf := n.grabBuf(payload)
		corrupt(buf, v)
		n.deliver(deliverAt+v.ExtraDelay, src, dst, h, buf)
	}
	if v.Dup {
		n.Dups++
		// The duplicate gets its own copy of the (uncorrupted) payload:
		// both copies are released independently after their handlers run,
		// so they must never share a pooled buffer.
		dup := n.grabBuf(payload)
		n.deliver(deliverAt+dupDelay(v), src, dst, h, dup)
	}
	return nil
}

// corrupt applies a verdict's bit-flip to the primary delivery copy.
func corrupt(buf []byte, v Verdict) {
	if !v.Corrupt || len(buf) == 0 {
		return
	}
	off := v.CorruptOff % len(buf)
	if off < 0 {
		off += len(buf)
	}
	buf[off] ^= v.CorruptXor
}

// dupDelay returns the duplicate copy's extra delay (minimum 1µs, so the
// duplicate never lands before the original).
func dupDelay(v Verdict) Micros {
	if v.DupDelay < 1 {
		return 1
	}
	return v.DupDelay
}

// deliver schedules a frame's arrival; frames addressed to a node that is
// down at the delivery instant vanish. buf is a scratch buffer owned by
// the network: it is recycled once the handler returns, so handlers must
// not retain it (they copy whatever outlives the call — Unmarshal copies
// strings, the chaos link layer copies held frames).
func (n *Network) deliver(at Micros, src, dst int, h Handler, buf []byte) {
	n.sim.scheduleClass(int32(dst), classDelivery, at-n.sim.now, func() {
		if !n.NodeUp(dst) {
			atomic.AddUint64(&n.Lost, 1)
			if n.OnLost != nil {
				n.OnLost(n.sim.Now(), src, dst)
			}
			n.releaseBuf(buf)
			return
		}
		h(src, buf)
		n.releaseBuf(buf)
	}, false)
}

// ResetCounters zeroes the traffic counters.
func (n *Network) ResetCounters() {
	n.Frames, n.Bytes, n.PayloadLen, n.BusyMicros = 0, 0, 0, 0
}

// ---------------------------------------------------------------- machines

// MachineModel is a workstation model from the paper's evaluation (§3.6).
// MHz is an effective rate calibrated so that kernel-side cycle counts
// reproduce the paper's absolute milliseconds; EXPERIMENTS.md records the
// calibration. Family groups machines of one workstation type: the
// original Emerald system supported mobility only within a family.
type MachineModel struct {
	Name   string
	Family string
	Arch   byte // arch.ID; byte avoids an import cycle
	MHz    float64
	// ConvSlowdown scales the cost of network-format conversion routines
	// on this machine ("depending on the processor type, 2-3 procedure
	// calls are performed to convert a simple integer value", §3.5 — the
	// Sun-3's hand-written routines were the slowest). Zero means 1.
	ConvSlowdown float64
}

// ConvFactor returns the conversion slowdown (1 when unset).
func (m MachineModel) ConvFactor() float64 {
	if m.ConvSlowdown == 0 {
		return 1
	}
	return m.ConvSlowdown
}

// The paper's machines (§3.6). Sun-3 and the two HP9000/300 models share
// the M68K ISA and differ only in clock rate; the VAXstation 2000 is the
// slow VAX the original figures used. Effective MHz values are calibration
// constants, not nameplate clock rates.
var (
	SPARCstationSLC = MachineModel{Name: "SPARCstation SLC", Family: "sparc", Arch: 2, MHz: 20}
	Sun3_100        = MachineModel{Name: "Sun-3/100", Family: "sun3", Arch: 1, MHz: 11.8, ConvSlowdown: 2.6}
	HP9000_433s     = MachineModel{Name: "HP9000/400-433s", Family: "hp300", Arch: 1, MHz: 33}
	HP9000_385      = MachineModel{Name: "HP9000/300-385", Family: "hp300", Arch: 1, MHz: 25}
	VAXstation2000  = MachineModel{Name: "VAXstation 2000", Family: "vax", Arch: 0, MHz: 9.7}
)
