// The tests live in an external package: core imports kernel, kernel
// imports vet (the load-time gate), so vet's own test files must not
// import core from package vet.
package vet_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/busstop"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/vet"
)

func compile(t *testing.T, src string) *codegen.Program {
	t.Helper()
	prog, err := core.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// mustClean asserts a program has no findings at all.
// mustClean matches the emvet CLI's default bar: warnings and errors fail,
// info-severity findings (e.g. immobile-reach notes on examples that use
// fix deliberately) do not.
func mustClean(t *testing.T, prog *codegen.Program) {
	t.Helper()
	for _, d := range vet.Check(prog) {
		if d.Sev >= vet.SevWarning {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// passNames collects the distinct pass names among diags.
func passNames(diags []vet.Diagnostic) map[string]bool {
	out := map[string]bool{}
	for _, d := range diags {
		out[d.Pass] = true
	}
	return out
}

// wantPass asserts at least one error-severity finding from the named pass.
func wantPass(t *testing.T, diags []vet.Diagnostic, pass string) {
	t.Helper()
	for _, d := range diags {
		if d.Pass == pass && d.Sev == vet.SevError {
			return
		}
	}
	t.Errorf("no %s error; got %d diagnostics:", pass, len(diags))
	for _, d := range diags {
		t.Errorf("  %s", d)
	}
}

// TestExamplesClean runs every pass over every example program: the shipped
// corpus must be vet-clean on all architectures.
func TestExamplesClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.em"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			mustClean(t, compile(t, string(src)))
		})
	}
}

const monitoredSrc = `
object Counter
  monitor
    var n: Int <- 0
    operation bump() -> (r: Int)
      n <- n + 1
      r <- n
    end
  end monitor
end Counter

object Main
  process
    var c: Counter <- new Counter
    print("n=", c.bump())
  end process
end Main
`

// restop rebuilds fc.Stops from a mutated copy of its entries.
func restop(t *testing.T, fc *codegen.FuncCode, mutate func(stops []busstop.Info)) {
	t.Helper()
	stops := fc.Stops.All()
	mutate(stops)
	nt, err := busstop.NewTable(stops)
	if err != nil {
		t.Fatalf("rebuilding corrupted table: %v", err)
	}
	fc.Stops = nt
}

// vaxFunc returns the named object's first function's code for the VAX.
func vaxFunc(t *testing.T, prog *codegen.Program, obj string) *codegen.FuncCode {
	t.Helper()
	oc := prog.Object(obj)
	if oc == nil {
		t.Fatalf("no object %s", obj)
	}
	ac := oc.PerArch[arch.VAX]
	if ac == nil || len(ac.Funcs) == 0 {
		t.Fatalf("no VAX code for %s", obj)
	}
	return ac.Funcs[0]
}

// TestCorruptTempDepth skews one architecture's liveness record for one stop:
// both the cross-ISA isomorphism and the IR recomputation must notice.
func TestCorruptTempDepth(t *testing.T) {
	prog := compile(t, monitoredSrc)
	mustClean(t, prog)
	restop(t, vaxFunc(t, prog, "Counter"), func(stops []busstop.Info) {
		stops[0].TempDepth++
		stops[0].TempKinds = append(stops[0].TempKinds, ir.VKInt)
	})
	diags := vet.Check(prog)
	wantPass(t, diags, "stop-isomorphism")
	wantPass(t, diags, "liveness-consistency")
}

// TestCorruptStopPC moves a stop PC off its instruction boundary. Stop
// kinds and liveness still agree everywhere, so only pc-alignment fires.
func TestCorruptStopPC(t *testing.T) {
	prog := compile(t, monitoredSrc)
	restop(t, vaxFunc(t, prog, "Counter"), func(stops []busstop.Info) {
		stops[len(stops)-1].PC--
	})
	diags := vet.Check(prog)
	wantPass(t, diags, "pc-alignment")
	if names := passNames(diags); names["stop-isomorphism"] {
		t.Errorf("PC skew flagged by stop-isomorphism; PCs are machine-dependent")
	}
}

// TestCorruptExitOnly clears the exit-only flag on the VAX monitor-exit
// stop — exactly the §3.3 atomic-UNLINK invariant.
func TestCorruptExitOnly(t *testing.T) {
	prog := compile(t, monitoredSrc)
	fc := vaxFunc(t, prog, "Counter")
	found := false
	restop(t, fc, func(stops []busstop.Info) {
		for i := range stops {
			if stops[i].ExitOnly {
				stops[i].ExitOnly = false
				found = true
			}
		}
	})
	if !found {
		t.Fatal("no exit-only stop in a monitored VAX function")
	}
	diags := vet.Check(prog)
	wantPass(t, diags, "stop-isomorphism")
	wantPass(t, diags, "liveness-consistency")
}

// TestCorruptActivationTemplate flips a variable home's kind: the
// marshalling contract check must fire.
func TestCorruptActivationTemplate(t *testing.T) {
	prog := compile(t, monitoredSrc)
	fc := vaxFunc(t, prog, "Counter")
	if len(fc.Template.Vars) == 0 {
		t.Fatal("function has no variable homes")
	}
	if fc.Template.Vars[0].Kind == ir.VKInt {
		fc.Template.Vars[0].Kind = ir.VKPtr
	} else {
		fc.Template.Vars[0].Kind = ir.VKInt
	}
	wantPass(t, vet.Check(prog), "template-coverage")
}

// TestCorruptSavedRegs drops a saved register the homes require.
func TestCorruptSavedRegs(t *testing.T) {
	prog := compile(t, monitoredSrc)
	fc := vaxFunc(t, prog, "Counter")
	if len(fc.Template.SavedRegs) == 0 {
		t.Skip("no register-homed variables on the VAX for this function")
	}
	fc.Template.SavedRegs = fc.Template.SavedRegs[:len(fc.Template.SavedRegs)-1]
	wantPass(t, vet.Check(prog), "template-coverage")
}

// TestCorruptObjectTemplate flips an object slot kind.
func TestCorruptObjectTemplate(t *testing.T) {
	prog := compile(t, monitoredSrc)
	oc := prog.Object("Counter")
	if len(oc.Template.Slots) == 0 {
		t.Fatal("Counter has no data slots")
	}
	oc.Template.Slots[0] = ir.VKPtr
	wantPass(t, vet.Check(prog), "template-coverage")
}

// TestVetForLoad exercises the kernel's load gate directly: clean programs
// load, tampered ones are refused with the pass named in the error.
func TestVetForLoad(t *testing.T) {
	prog := compile(t, monitoredSrc)
	oc := prog.Object("Counter")
	for _, spec := range arch.AllSpecs() {
		if err := vet.VetForLoad(prog, oc, spec); err != nil {
			t.Errorf("clean program refused on %s: %v", spec.Name, err)
		}
	}
	restop(t, vaxFunc(t, prog, "Counter"), func(stops []busstop.Info) {
		stops[0].TempDepth++
		stops[0].TempKinds = append(stops[0].TempKinds, ir.VKInt)
	})
	err := vet.VetForLoad(prog, oc, arch.SpecOf(arch.VAX))
	if err == nil {
		t.Fatal("tampered table loaded without complaint")
	}
	if !strings.Contains(err.Error(), "liveness-consistency") &&
		!strings.Contains(err.Error(), "stop-isomorphism") {
		t.Errorf("load error does not name the failing pass: %v", err)
	}
	// Lints must not stop a load: a program with a dead store is legal.
	deadStore := compile(t, `
object Main
  process
    var x: Int <- 1
    x <- 2
    print(x)
  end process
end Main
`)
	if !vet.HasErrors(vet.Check(deadStore)) {
		// It does carry a warning, though.
		if m, ok := vet.MaxSeverity(vet.Check(deadStore)); !ok || m != vet.SevWarning {
			t.Error("dead-store fixture produced no warning")
		}
	}
	for _, spec := range arch.AllSpecs() {
		if err := vet.VetForLoad(deadStore, deadStore.Object("Main"), spec); err != nil {
			t.Errorf("warning-only program refused on %s: %v", spec.Name, err)
		}
	}
}

// TestDiagnosticString pins the CLI/golden line format.
func TestDiagnosticString(t *testing.T) {
	d := vet.Diagnostic{
		Pass: "liveness-consistency", Sev: vet.SevError,
		Object: "Kilroy", Func: "Kilroy.tour", Arch: "vax", Stop: 3, Msg: "boom",
	}
	want := "error: [liveness-consistency] Kilroy.tour [vax] stop 3: boom"
	if got := d.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	d2 := vet.Diagnostic{Pass: "template-coverage", Sev: vet.SevError, Object: "Kilroy", Stop: -1, Msg: "boom"}
	if got, want := d2.String(), "error: [template-coverage] Kilroy boom"; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

// TestParseSeverity covers the CLI's threshold parsing.
func TestParseSeverity(t *testing.T) {
	for name, want := range map[string]vet.Severity{
		"info": vet.SevInfo, "warning": vet.SevWarning, "error": vet.SevError,
	} {
		got, err := vet.ParseSeverity(name)
		if err != nil || got != want {
			t.Errorf("ParseSeverity(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := vet.ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity accepted an unknown name")
	}
}

// TestPassesListed: every pass that can report must be in the listing.
func TestPassesListed(t *testing.T) {
	listed := map[string]bool{}
	for _, p := range vet.Passes() {
		listed[p.Name] = true
	}
	for _, name := range []string{
		"stop-isomorphism", "pc-alignment", "liveness-consistency",
		"template-coverage", "definite-assignment", "unreachable-code",
		"dead-store", "monitor-reentrancy",
	} {
		if !listed[name] {
			t.Errorf("pass %s missing from Passes()", name)
		}
	}
}
