package exp

import "testing"

func TestAblations(t *testing.T) {
	bs, err := BusStopDensity()
	if err != nil {
		t.Fatal(err)
	}
	homes, err := RegisterHomes()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatAblations(bs, homes))
	if bs.OverheadPct < 0 || bs.OverheadPct > 25 {
		t.Errorf("poll overhead %.1f%% out of the 'nearly free' band", bs.OverheadPct)
	}
	if bs.StopsWithout >= bs.StopsWith {
		t.Error("loop-bottom stops were not removed")
	}
	// Fewer homes must not be faster locally.
	if homes[0].ComputeMS < homes[1].ComputeMS {
		t.Errorf("memory-only (%f) beat defaults (%f)", homes[0].ComputeMS, homes[1].ComputeMS)
	}
	if homes[2].ComputeMS > homes[1].ComputeMS {
		t.Errorf("wide homes (%f) slower than defaults (%f)", homes[2].ComputeMS, homes[1].ComputeMS)
	}
}
