// The empar scaling study: the same N-node ring workload run under the
// sequential reference engine and the parallel per-node-goroutine engine.
// The two runs must agree byte for byte on every observable (that is the
// parallel engine's contract); the experiment's point is the wall-clock
// ratio, which on a multi-core host should grow with N because the ring
// keeps every node computing concurrently.
//
// Wall-clock numbers are host-dependent and are therefore never compared
// against committed baselines; BENCH_par.json records the host's CPU count
// next to the measurements so a single-core CI box reporting speedup ~1x
// is readable as expected, not as a regression.

package exp

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// ParResult is one ring size's sequential-vs-parallel measurement.
type ParResult struct {
	Nodes     int
	SimMS     float64 // simulated time (identical under both engines)
	Instrs    uint64  // instructions executed across all nodes
	SeqWallMS float64
	ParWallMS float64
	Speedup   float64
}

// ringProgram generates the N-walker ring tour: walker i starts on node i,
// and each hop does an identical local compute chunk before moving to the
// next node around the ring. At any instant every node hosts one walker,
// so the simulated work is spread evenly and the parallel engine can run
// all N compute slices concurrently.
func ringProgram(nodes, hops, chunk int) string {
	var b strings.Builder
	b.WriteString(`object Walker
  operation run(start: Int, hops: Int, chunk: Int) -> (r: Int)
    var acc: Int <- 0
    var h: Int <- 0
    while h < hops do
      var i: Int <- 0
      while i < chunk do
        acc <- acc + (i % 7) * (i % 5) + 1
        i <- i + 1
      end
      move self to node((start + h + 1) % nodes())
      h <- h + 1
    end
    r <- acc
  end
end Walker
`)
	for i := 0; i < nodes; i++ {
		fmt.Fprintf(&b, `
object Driver%d
  process
    var w: Walker <- new Walker
    print("walker %d total: ", w.run(%d, %d, %d))
  end process
end Driver%d
`, i, i, i, hops, chunk, i)
	}
	return b.String()
}

// ringRun executes the ring workload once and returns its observables and
// wall-clock cost.
func ringRun(src string, nodes int, parallel bool) (lines []string, log []byte, simMS float64, instrs uint64, wall time.Duration, err error) {
	machines := make([]netsim.MachineModel, nodes)
	for i := range machines {
		machines[i] = netsim.SPARCstationSLC
	}
	opts := core.Options{
		Parallel:  parallel,
		Placement: func(_ string, rootIdx int) int { return rootIdx % nodes },
	}
	start := time.Now()
	sys, err := core.RunSource(src, machines, opts)
	wall = time.Since(start)
	if err != nil {
		return nil, nil, 0, 0, wall, err
	}
	for _, n := range sys.Cluster.Nodes {
		instrs += n.Instrs
	}
	return sys.Lines(), obs.EventLog(sys.Recorder()), sys.ElapsedMS(), instrs, wall, nil
}

// ParScaling measures the ring workload at each size, checking on the way
// that the parallel engine reproduces the sequential run exactly.
func ParScaling(sizes []int, hops, chunk int) ([]ParResult, error) {
	var out []ParResult
	for _, n := range sizes {
		src := ringProgram(n, hops, chunk)
		seqLines, seqLog, seqSim, seqInstrs, seqWall, err := ringRun(src, n, false)
		if err != nil {
			return nil, fmt.Errorf("ring %d sequential: %w", n, err)
		}
		parLines, parLog, parSim, parInstrs, parWall, err := ringRun(src, n, true)
		if err != nil {
			return nil, fmt.Errorf("ring %d parallel: %w", n, err)
		}
		if strings.Join(seqLines, "\n") != strings.Join(parLines, "\n") {
			return nil, fmt.Errorf("ring %d: parallel output differs from sequential:\nseq %v\npar %v",
				n, seqLines, parLines)
		}
		if !bytes.Equal(seqLog, parLog) {
			return nil, fmt.Errorf("ring %d: parallel event log differs from sequential", n)
		}
		if seqSim != parSim || seqInstrs != parInstrs {
			return nil, fmt.Errorf("ring %d: simulated work differs: %v ms/%d instrs vs %v ms/%d instrs",
				n, seqSim, seqInstrs, parSim, parInstrs)
		}
		out = append(out, ParResult{
			Nodes:     n,
			SimMS:     seqSim,
			Instrs:    seqInstrs,
			SeqWallMS: float64(seqWall.Microseconds()) / 1000,
			ParWallMS: float64(parWall.Microseconds()) / 1000,
			Speedup:   float64(seqWall) / float64(parWall),
		})
	}
	return out, nil
}

// FormatParScaling renders the human-readable report.
func FormatParScaling(rs []ParResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "empar scaling: N-walker ring, identical per-node compute (host: %d CPUs)\n",
		runtime.NumCPU())
	fmt.Fprintf(&b, "%6s %10s %12s %12s %12s %8s\n",
		"nodes", "sim ms", "instrs", "seq wall ms", "par wall ms", "speedup")
	for _, r := range rs {
		fmt.Fprintf(&b, "%6d %10.1f %12d %12.1f %12.1f %7.2fx\n",
			r.Nodes, r.SimMS, r.Instrs, r.SeqWallMS, r.ParWallMS, r.Speedup)
	}
	b.WriteString("parallel output, event logs, simulated time and instruction counts\n" +
		"verified identical to the sequential engine at every size\n")
	return b.String()
}

// BenchParRow is one ring size in BENCH_par.json.
type BenchParRow struct {
	Nodes     int     `json:"nodes"`
	SimMS     float64 `json:"sim_ms"`
	Instrs    uint64  `json:"instrs"`
	SeqWallMS float64 `json:"seq_wall_ms"`
	ParWallMS float64 `json:"par_wall_ms"`
	Speedup   float64 `json:"speedup"`
}

// BenchPar is the BENCH_par.json document. Unlike the other BENCH files it
// records wall-clock times, so it is never baseline-compared; HostCPUs
// gives the context needed to read the speedups.
type BenchPar struct {
	Benchmark string        `json:"benchmark"`
	Workload  string        `json:"workload"`
	HostCPUs  int           `json:"host_cpus"`
	Claim     string        `json:"claim"`
	Rows      []BenchParRow `json:"rows"`
}

// BenchParDoc converts scaling results to the JSON document.
func BenchParDoc(rs []ParResult) BenchPar {
	doc := BenchPar{
		Benchmark: "par",
		Workload:  "N-walker ring tour, identical per-node compute chunks",
		HostCPUs:  runtime.NumCPU(),
		Claim:     "parallel engine byte-identical to sequential; wall-clock scales with nodes on multi-core hosts",
	}
	for _, r := range rs {
		doc.Rows = append(doc.Rows, BenchParRow{
			Nodes: r.Nodes, SimMS: r.SimMS, Instrs: r.Instrs,
			SeqWallMS: r.SeqWallMS, ParWallMS: r.ParWallMS, Speedup: r.Speedup,
		})
	}
	return doc
}
