// Differential validation of live-set sharpening: every example program,
// on every ISA plus the heterogeneous Figure 1 network, must behave
// identically with Config.SharpenLiveSets on (the default) and off —
// same printed lines, simulated time, faults, per-node cycle/instruction
// counts, final memory images, wire payload bytes and rendered event
// stream. Sharpening substitutes canonical zeros for pta-dead slots
// inside the same converter calls, so the marshaled slot counts are
// exactly equal; the measured shrink is the canonicalized fraction,
// which must be nonzero somewhere or the whole mechanism is vacuous.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// sharpenRun extends the dispatch projection with the conversion-side
// counters sharpening touches.
type sharpenRun struct {
	dispatchRun
	payload       uint64
	marshaled     uint64
	canonicalized uint64
}

func captureSharpen(t *testing.T, src string, machines []netsim.MachineModel, noSharpen bool) sharpenRun {
	t.Helper()
	sys, err := RunSource(src, machines, Options{NoSharpen: noSharpen})
	if err != nil {
		t.Fatalf("run (nosharpen=%v): %v", noSharpen, err)
	}
	r := sharpenRun{payload: uint64(sys.Cluster.Net.PayloadLen)}
	r.lines = sys.Lines()
	r.elapsed = sys.ElapsedMS()
	r.eventLog = obs.EventLog(sys.Recorder())
	for _, f := range sys.Cluster.Faults {
		r.faults = append(r.faults, fmt.Sprintf("node %d frag %d at %v: %s", f.Node, f.Frag, f.At, f.Msg))
	}
	for _, n := range sys.Cluster.Nodes {
		r.cycles = append(r.cycles, n.CPU.Cycles)
		r.instrs = append(r.instrs, n.Instrs)
		r.memSum = append(r.memSum, append([]byte(nil), n.Mem...))
		r.marshaled += n.MarshaledVarSlots
		r.canonicalized += n.CanonicalizedVarSlots
	}
	return r
}

func TestSharpenDifferential(t *testing.T) {
	progs, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.em"))
	if err != nil || len(progs) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	nets := []struct {
		name     string
		machines []netsim.MachineModel
	}{
		{"vax", []netsim.MachineModel{netsim.VAXstation2000, netsim.VAXstation2000, netsim.VAXstation2000}},
		{"m68k", []netsim.MachineModel{netsim.Sun3_100, netsim.HP9000_433s, netsim.HP9000_385}},
		{"sparc", []netsim.MachineModel{netsim.SPARCstationSLC, netsim.SPARCstationSLC, netsim.SPARCstationSLC}},
		{"figure1", Figure1Network()},
	}
	var totalCanon uint64
	for _, pf := range progs {
		srcBytes, err := os.ReadFile(pf)
		if err != nil {
			t.Fatalf("reading %s: %v", pf, err)
		}
		src := string(srcBytes)
		for _, net := range nets {
			t.Run(filepath.Base(pf)+"/"+net.name, func(t *testing.T) {
				sharp := captureSharpen(t, src, net.machines, false)
				plain := captureSharpen(t, src, net.machines, true)
				diffDispatchRuns(t, "sharpened", sharp.dispatchRun, plain.dispatchRun)
				if sharp.payload != plain.payload {
					t.Errorf("wire payload: %d bytes (sharpened) vs %d (unsharpened)",
						sharp.payload, plain.payload)
				}
				if sharp.marshaled != plain.marshaled {
					t.Errorf("marshaled slots: %d (sharpened) vs %d (unsharpened); sharpening must not change what is shipped",
						sharp.marshaled, plain.marshaled)
				}
				if plain.canonicalized != 0 {
					t.Errorf("unsharpened run canonicalized %d slots; the escape hatch is broken", plain.canonicalized)
				}
				if sharp.canonicalized > sharp.marshaled {
					t.Errorf("canonicalized %d of %d marshaled slots", sharp.canonicalized, sharp.marshaled)
				}
				if len(sharp.lines) == 0 {
					t.Error("program printed nothing; differential comparison is vacuous")
				}
				totalCanon += sharp.canonicalized
			})
		}
	}
	if totalCanon == 0 {
		t.Error("no run canonicalized a single slot; the sharpening differential is vacuous")
	}
}
