// Command emvet is the cross-ISA mobility-soundness analyzer: it compiles
// each Emerald-subset source file for every simulated architecture and runs
// every static-analysis pass in internal/vet over the result — bus-stop
// isomorphism across ISAs, stop-PC alignment, per-stop liveness consistency,
// template coverage, the IR dataflow lints, and the whole-program points-to
// passes (ptr-escape, dead-ptr-at-stop, immobile-reach).
//
// Usage:
//
//	emvet [-severity error|warning|info] [-passes] [-graph] file.em...
//
//	-severity  lowest severity that makes the exit status nonzero
//	           (default warning)
//	-passes    list the passes with their descriptions and exit
//	-list      alias for -passes
//	-graph     print the points-to object-graph report (allocation sites,
//	           call graph, escapes, pinned reachability, group-migration
//	           cohorts) instead of diagnostics
//
// Findings identical across architectures are printed once, with the
// architecture list merged into one line.
//
// The exit status is 0 when every file compiles and no finding reaches the
// threshold, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pta"
	"repro/internal/vet"
)

func main() {
	sevName := flag.String("severity", "warning", "exit nonzero at or above this severity (info, warning, error)")
	passes := flag.Bool("passes", false, "list passes with descriptions and exit")
	list := flag.Bool("list", false, "alias for -passes")
	graph := flag.Bool("graph", false, "print the points-to object-graph report instead of diagnostics")
	flag.Parse()
	if *passes || *list {
		for _, p := range vet.Passes() {
			fmt.Printf("%-22s %s\n", p.Name, p.Doc)
		}
		return
	}
	threshold, err := vet.ParseSeverity(*sevName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emvet:", err)
		os.Exit(2)
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: emvet [-severity s] [-passes] [-graph] file.em...")
		os.Exit(2)
	}
	fail := false
	for _, file := range flag.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "emvet:", err)
			fail = true
			continue
		}
		prog, err := core.Compile(string(src))
		if err != nil {
			for _, line := range core.Diagnostics(err) {
				fmt.Fprintf(os.Stderr, "%s: %s\n", file, line)
			}
			fail = true
			continue
		}
		if *graph {
			p := &ir.Program{}
			for _, oc := range prog.Objects {
				p.Objects = append(p.Objects, oc.IR)
			}
			r, err := pta.Analyze(p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: pta: %v\n", file, err)
				fail = true
				continue
			}
			fmt.Printf("== %s\n%s", file, r.Report())
			continue
		}
		diags := vet.Dedup(vet.Check(prog))
		for _, d := range diags {
			fmt.Printf("%s: %s\n", file, d)
		}
		if m, ok := vet.MaxSeverity(diags); ok && m >= threshold {
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
}
