// Reliable link layer and crash handling, active only under a chaos plan
// (Config.Chaos). Every protocol message travels as a CRC'd, sequence-
// numbered LData frame that the receiver acknowledges and the sender
// retransmits on an exponential-backoff timer until acked. Per-source
// in-order release (node.go deliver) makes delivery exactly-once and FIFO
// per channel, which the forwarding-address protocol's loop-freedom relies
// on. Nodes crash fail-stop with durable kernel and link state: a crashed
// node is simply unresponsive, and on restart its stalled frames and timers
// re-arm. Heartbeats drive crash suspicion, which fails in-flight remote
// invocations with the typed ErrNodeDown.

package kernel

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/wire"
)

// ErrNodeDown types faults caused by a crashed (or suspected-crashed) peer;
// test and callers match it with errors.Is.
var ErrNodeDown = errors.New("node down")

// pendingFrame is one unacked reliable frame.
type pendingFrame struct {
	dst      int
	seq      uint32
	frame    []byte // marshalled LinkFrame, retransmitted verbatim
	kind     string // payload kind, for the retransmit event
	attempts int
	acked    bool
	// stalled parks the frame: retries exhausted against a suspected peer,
	// or the retransmit timer fired while this node was down. Parked frames
	// re-arm when the peer recovers or this node restarts — the channel
	// sequence must stay contiguous, so frames are never abandoned.
	stalled bool
	// onAck fires once when the frame is first acknowledged (the move
	// protocol's delivery hook).
	onAck func()
}

func linkKey(dst int, seq uint32) uint64 { return uint64(uint32(dst))<<32 | uint64(seq) }

// sendReliable wraps inner in an LData frame, registers it for
// retransmission and puts it on the wire.
func (n *Node) sendReliable(dst int, inner []byte, kind string, onAck func()) *pendingFrame {
	n.outSeq[dst]++
	seq := n.outSeq[dst]
	lf := &wire.LinkFrame{Kind: wire.LData, Seq: seq, Inner: inner}
	pf := &pendingFrame{dst: dst, seq: seq, frame: lf.Marshal(), kind: kind, onAck: onAck}
	n.unacked[linkKey(dst, seq)] = pf
	n.lastFrame = pf
	n.transmit(pf)
	return pf
}

// transmit puts one attempt of pf on the medium and arms the next
// retransmission timer.
func (n *Node) transmit(pf *pendingFrame) {
	pf.attempts++
	if pf.attempts > 1 {
		// A retransmission resends the already-marshalled frame from the
		// kernel's buffer: it costs a timer pop and a copy, not the full
		// per-message protocol-stack charge the first send paid (charging
		// SendCycles here would snowball the CPU queue under loss and
		// collapse the link).
		n.charge(uint64(n.cluster.Costs.SyscallCycles) +
			uint64(n.cluster.Costs.PerByteCycles)*uint64(len(pf.frame)))
		n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID), Kind: obs.EvRetransmit,
			A: uint64(pf.seq), B: uint64(pf.dst), Str: pf.kind, Span: uint32(pf.attempts)})
		n.cluster.Rec.Metrics().Add("retransmits", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
	}
	n.netSend(pf.dst, pf.frame)
	n.armRetransmit(pf)
}

// armRetransmit schedules the retransmission check for pf's current attempt
// with exponential backoff. The timer is strong (it keeps the simulation
// alive) because an unacked frame is unfinished protocol work.
func (n *Node) armRetransmit(pf *pendingFrame) {
	plan := n.cluster.Chaos
	rto := plan.RTOMin()
	for i := 1; i < pf.attempts; i++ {
		rto *= 2
		if rto >= plan.RTOCap() {
			rto = plan.RTOCap()
			break
		}
	}
	// The frame reaches the wire only after the CPU drains the marshalling
	// work already queued (netSend passes CPU.FreeAt as the earliest start);
	// count the timeout from there, or a long marshal alone triggers a
	// spurious retransmission.
	if wait := n.CPU.FreeAt - n.now(); wait > 0 {
		rto += wait
	}
	n.sched.At(rto, func() {
		if pf.acked || pf.stalled {
			return
		}
		if !n.Up {
			// Fired while crashed: park; restart re-arms.
			pf.stalled = true
			return
		}
		if pf.attempts >= plan.Retries() && n.suspects[pf.dst] {
			// The peer looks dead: park until it is heard from again.
			pf.stalled = true
			return
		}
		n.transmit(pf)
	})
}

// sendLinkAck acknowledges one LData sequence number (fire-and-forget; a
// lost ack is recovered by the sender's retransmission, which is re-acked).
func (n *Node) sendLinkAck(dst int, seq uint32) {
	n.charge(uint64(n.cluster.Costs.SyscallCycles))
	n.netSend(dst, (&wire.LinkFrame{Kind: wire.LAck, Seq: seq}).Marshal())
}

// recvAck retires an unacked frame and fires its delivery hook.
func (n *Node) recvAck(src int, seq uint32) {
	pf, ok := n.unacked[linkKey(src, seq)]
	if !ok {
		return // duplicate ack
	}
	pf.acked = true
	delete(n.unacked, linkKey(src, seq))
	if pf.onAck != nil {
		pf.onAck()
		pf.onAck = nil
	}
}

// heard notes liveness evidence from src, clearing suspicion and reviving
// any frames parked against it.
func (n *Node) heard(src int) {
	n.lastHeard[src] = n.now()
	if n.suspects[src] {
		delete(n.suspects, src)
		n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
			Kind: obs.EvNodeRecover, B: uint64(src)})
		n.reviveStalled(func(pf *pendingFrame) bool { return pf.dst == src })
	}
}

// reviveStalled re-arms parked frames matching the filter, in (dst, seq)
// order for determinism.
func (n *Node) reviveStalled(match func(*pendingFrame) bool) {
	keys := make([]uint64, 0, len(n.unacked))
	for k, pf := range n.unacked {
		if pf.stalled && match(pf) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		pf := n.unacked[k]
		pf.stalled = false
		n.transmit(pf)
	}
}

// heartbeatTick is the per-node liveness beacon and suspicion sweep. It
// self-re-arms as a weak event — heartbeats never keep a finished
// simulation alive — and keeps ticking (without sending) while the node is
// down so the cadence survives a restart.
func (n *Node) heartbeatTick() {
	plan := n.cluster.Chaos
	n.sched.AtWeak(plan.HeartbeatPeriod(), n.heartbeatTick)
	if !n.Up {
		return
	}
	hb := (&wire.LinkFrame{Kind: wire.LRaw}).Marshal()
	now := n.now()
	for _, peer := range n.cluster.Nodes {
		if peer.ID == n.ID {
			continue
		}
		n.charge(uint64(n.cluster.Costs.SyscallCycles))
		n.netSend(peer.ID, hb)
		if !n.suspects[peer.ID] && now-n.lastHeard[peer.ID] > plan.SuspectTimeout() {
			n.suspects[peer.ID] = true
			n.cluster.Rec.Emit(obs.Event{At: int64(now), Node: int32(n.ID),
				Kind: obs.EvNodeSuspect, B: uint64(peer.ID)})
			n.cluster.Rec.Metrics().Add("node_suspects", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
			n.failWaitersOn(peer.ID)
			// The peer's forwarding addresses may dangle now: mark every
			// proxy cached at it stale so directory-armed paths re-resolve
			// instead of retrying into a dead node.
			n.invalidateLocationsAt(peer.ID)
		}
	}
}

// failWaitersOn faults every fragment blocked on a Return from the newly
// suspected peer: its forwarding address is stale and the in-flight
// invocation is considered lost.
func (n *Node) failWaitersOn(peer int) {
	ids := make([]uint32, 0, len(n.frags))
	for id, f := range n.frags {
		if f.Status == FragStateBlockedCall && f.waitNode == int32(peer) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := n.frags[id]
		n.faultErr(f, ErrNodeDown,
			fmt.Sprintf("remote invocation lost: node %d is down", peer))
	}
}

// crash takes the node down fail-stop: it stops running and receiving, but
// its memory, object table and link state are durable across the outage.
func (n *Node) crash() {
	if !n.Up {
		return
	}
	n.Up = false
	n.cluster.Net.SetNodeUp(n.ID, false)
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID), Kind: obs.EvNodeCrash})
	n.cluster.Rec.Metrics().Add("node_crashes", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
}

// restart brings a crashed node back: parked frames and stalled timers
// re-arm, peers get a fresh suspicion grace period, and the scheduler
// resumes.
func (n *Node) restart() {
	if n.Up {
		return
	}
	n.Up = true
	n.cluster.Net.SetNodeUp(n.ID, true)
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID), Kind: obs.EvNodeRestart})
	// Do not instantly suspect everyone after a long outage.
	for _, peer := range n.cluster.Nodes {
		if peer.ID != n.ID {
			n.lastHeard[peer.ID] = n.now()
		}
	}
	n.reviveStalled(func(pf *pendingFrame) bool { return !n.suspects[pf.dst] })
	// Re-arm commit timers that fired while down, in span order.
	spans := make([]uint32, 0, len(n.pendingCommits))
	for span, tx := range n.pendingCommits {
		if tx.stalledTimer {
			spans = append(spans, span)
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i] < spans[j] })
	for _, span := range spans {
		tx := n.pendingCommits[span]
		tx.stalledTimer = false
		n.armCommitTimer(tx)
	}
	if n.moveRetryStalled {
		n.moveRetryStalled = false
		n.sched.At(0, n.retryPendingMoves)
	}
	if n.cluster.dirOn {
		n.restartDir()
	}
	n.schedule()
}
