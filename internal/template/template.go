// Package template defines the compiler-emitted descriptions of object data
// areas and activation records that the runtime kernel needs to marshal,
// swizzle, migrate and garbage-collect them (the paper's "templates", §3.2).
//
// Object templates are machine-independent: the slot order is fixed by the
// front end, and only byte order differs between architectures. Activation
// templates are machine-dependent: each ISA back end assigns its own
// variable homes (callee-saved registers vs activation-record slots), its
// own record field order, and its own saved-register area — these are
// exactly the differences the enhanced runtime converts at migration time.
package template

import (
	"fmt"

	"repro/internal/ir"
)

// WordSize is the universal 32-bit word size of the simulated machines.
const WordSize = 4

// Home describes where one variable of an activation lives for the whole
// lifetime of the activation (the paper avoids multiple templates per
// operation by giving every variable a single home, §3.2).
type Home struct {
	Name  string
	Kind  ir.VK
	InReg bool
	Reg   byte  // register number when InReg
	Off   int32 // byte offset from the activation record base otherwise
}

func (h Home) String() string {
	if h.InReg {
		return fmt.Sprintf("%s:%s@r%d", h.Name, h.Kind, h.Reg)
	}
	return fmt.Sprintf("%s:%s@fp+%d", h.Name, h.Kind, h.Off)
}

// Activation describes the layout of one operation's activation record on
// one architecture. All offsets are byte offsets from the record base (FP).
type Activation struct {
	FuncName   string
	NumParams  int
	NumResults int
	NumVars    int // params + results + locals
	Monitored  bool

	// Fixed control fields. Their order within the record differs per ISA.
	SavedFPOff  int32 // caller's frame pointer
	RetDescOff  int32 // caller's code descriptor index
	RetPCOff    int32 // return program counter (a bus stop PC in the caller)
	SelfOff     int32 // caller's self reference
	TempBaseOff int32 // caller's temp-stack base (restored on return)

	// Saved callee-saved registers: the caller's values of the home
	// registers this operation uses, written by the kernel at call time.
	SavedRegsOff int32
	SavedRegs    []byte // register numbers, in the order saved

	// Variable homes, indexed by frame slot.
	Vars []Home

	// Evaluation-stack (temporary) area.
	TempOff   int32
	TempSlots int

	Size int32 // total record size, word aligned
}

// RegHome returns the home of frame slot v if it is a register home.
func (a *Activation) RegHome(v int) (byte, bool) {
	h := a.Vars[v]
	return h.Reg, h.InReg
}

// Validate checks internal consistency (offsets within the record, no
// overlapping words). It exists so tests can assert that every back end
// produces well-formed templates.
func (a *Activation) Validate() error {
	if a.Size%WordSize != 0 {
		return fmt.Errorf("%s: size %d not word aligned", a.FuncName, a.Size)
	}
	used := map[int32]string{}
	claim := func(off int32, n int, what string) error {
		for i := 0; i < n; i++ {
			o := off + int32(i*WordSize)
			if o < 0 || o+WordSize > a.Size {
				return fmt.Errorf("%s: %s at %d outside record of size %d", a.FuncName, what, o, a.Size)
			}
			if prev, ok := used[o]; ok {
				return fmt.Errorf("%s: %s overlaps %s at offset %d", a.FuncName, what, prev, o)
			}
			used[o] = what
		}
		return nil
	}
	for _, c := range []struct {
		off  int32
		what string
	}{
		{a.SavedFPOff, "savedFP"}, {a.RetDescOff, "retDesc"},
		{a.RetPCOff, "retPC"}, {a.SelfOff, "self"}, {a.TempBaseOff, "tempBase"},
	} {
		if err := claim(c.off, 1, c.what); err != nil {
			return err
		}
	}
	if err := claim(a.SavedRegsOff, len(a.SavedRegs), "savedRegs"); err != nil {
		return err
	}
	for i, h := range a.Vars {
		if !h.InReg {
			if err := claim(h.Off, 1, fmt.Sprintf("var %s", h.Name)); err != nil {
				return err
			}
		}
		if h.InReg {
			for j := 0; j < i; j++ {
				if a.Vars[j].InReg && a.Vars[j].Reg == h.Reg {
					return fmt.Errorf("%s: vars %s and %s share register %d",
						a.FuncName, a.Vars[j].Name, h.Name, h.Reg)
				}
			}
		}
	}
	if err := claim(a.TempOff, a.TempSlots, "temps"); err != nil {
		return err
	}
	if len(a.Vars) != a.NumVars {
		return fmt.Errorf("%s: %d homes for %d vars", a.FuncName, len(a.Vars), a.NumVars)
	}
	return nil
}

// Object describes an object's data area. The layout (slot order) is
// machine-independent; a data area in memory is a header word followed by
// the slots, stored in the node's byte order.
type Object struct {
	Name          string
	Immutable     bool
	Slots         []ir.VK
	SlotNames     []string
	MonitoredFrom int
	NumConds      int
}

// DataSize returns the byte size of the data area excluding the header.
func (o *Object) DataSize() int32 { return int32(len(o.Slots) * WordSize) }
