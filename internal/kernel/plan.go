// Conversion-plan caching: template-driven frame conversion (MD→MI on
// the way out, MI→MD on the way in) re-resolves every variable's
// register home, frame offset and value kind on every hop, although all
// of that is static per (function, bus stop). A convPlan compiles the
// resolution once — on the first conversion at a stop — into flat slot
// descriptors, and is cached on the loadedFunc keyed by (bus stop, peer
// ISA); together with the code object and this node's own ISA that is
// the paper's (code object, bus stop, ISA pair) key. Repeated hops of
// the same thread (the kilroy tour, mobile13) then skip template
// interpretation entirely.
//
// Plans change how fast conversion runs, never what it does: the
// converter call sequence (which feeds the simulated conversion cost via
// chargeConv), the wire bytes, and the resulting memory images must be
// identical to the template-interpreting path. The one sanctioned
// deviation is live-set sharpening (Config.SharpenLiveSets): slots the
// stop's LiveVars mask proves dead ship the canonical zero instead of
// their stale payload. That substitutes the input word of the same
// converter call — sequence, sizes, charges and events are untouched,
// and the restored slot differs only in bits no execution can read.

package kernel

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/busstop"
	"repro/internal/ir"
	"repro/internal/oid"
	"repro/internal/wire"
)

// slotClass collapses ir.VK to the three conversion behaviors a slot can
// have on the wire.
type slotClass uint8

const (
	slotInt  slotClass = iota // identity word (ints, bools, chars)
	slotReal                  // float codec through the converter
	slotPtr                   // reference swizzle / string by-value copy
)

func classOf(k ir.VK) slotClass {
	switch k {
	case ir.VKReal:
		return slotReal
	case ir.VKPtr:
		return slotPtr
	}
	return slotInt
}

// varPlan is one variable's resolved home and conversion class. dead
// marks slots the stop's LiveVars mask proves unread after resumption;
// their payload word is replaced by zero (the canonical zero for the
// slot's class in this node's formats) before conversion, so the
// converter call sequence, wire sizes, charges and events stay identical
// while the shipped bits become canonical. Pointer slots are never
// marked: their conversion has observable side effects (string copies,
// swizzle exports), so canonicalizing them would not be charge-neutral.
type varPlan struct {
	inReg bool
	reg   uint8
	off   uint32
	class slotClass
	dead  bool
	zero  uint32
}

// planKey identifies a plan within one loadedFunc: the bus stop
// (wire.EntryStop for entry frames) and the ISA on the other side of the
// conversion.
type planKey struct {
	stop uint16
	peer arch.ID
}

// convPlan is the compiled conversion plan for one (function, bus stop,
// peer ISA): variable homes, temp-slot classes and the stop record, all
// resolved once.
type convPlan struct {
	vars    []varPlan
	temps   []slotClass // classes of stop.TempKinds
	result  slotClass   // class of deeper temp slots (stop.ResultKind)
	stop    busstop.Info
	entry   bool
	tempOff uint32
}

// tempClassAt mirrors tempKindAt over precomputed classes.
func (pl *convPlan) tempClassAt(j int) slotClass {
	if j < len(pl.temps) {
		return pl.temps[j]
	}
	return pl.result
}

// planFor returns the cached plan for (lf, stopNum, peer), compiling it
// on first use. stopNum is wire.EntryStop for entry frames. An unknown
// stop number panics exactly like the template-interpreting path did.
func (n *Node) planFor(lf *loadedFunc, stopNum uint16, peer arch.ID) *convPlan {
	key := planKey{stop: stopNum, peer: peer}
	if pl, ok := lf.plans[key]; ok {
		return pl
	}
	t := lf.fc.Template
	pl := &convPlan{vars: make([]varPlan, len(t.Vars)), tempOff: uint32(t.TempOff)}
	for i, h := range t.Vars {
		pl.vars[i] = varPlan{inReg: h.InReg, reg: uint8(h.Reg & 0xf),
			off: uint32(h.Off), class: classOf(h.Kind)}
	}
	if stopNum == wire.EntryStop {
		pl.entry = true
	} else {
		stop, err := lf.fc.Stops.ByStop(int(stopNum))
		if err != nil {
			panic(fmt.Sprintf("kernel: %v", err))
		}
		pl.stop = stop
		pl.temps = make([]slotClass, len(stop.TempKinds))
		for i, k := range stop.TempKinds {
			pl.temps[i] = classOf(k)
		}
		pl.result = classOf(stop.ResultKind)
		if n.cluster.SharpenLiveSets {
			// Slots >= 64 are outside the mask and stay live; entry frames
			// never reach here (no stop, nothing is dead before first run).
			for v := range pl.vars {
				vp := &pl.vars[v]
				if v >= 64 || vp.class == slotPtr || stop.LiveVars&(1<<uint(v)) != 0 {
					continue
				}
				vp.dead = true
				if vp.class == slotReal {
					vp.zero = n.Spec.Float.Enc(0)
				}
			}
		}
	}
	if lf.plans == nil {
		lf.plans = make(map[planKey]*convPlan)
	}
	lf.plans[key] = pl
	return pl
}

// wireClassValue is wireTempValue dispatched on a precomputed class. The
// pointer case delegates to the reference implementation — swizzling
// touches kernel maps and must stay in one place.
func (n *Node) wireClassValue(conv wire.Converter, c slotClass, w uint32) (wire.Value, error) {
	switch c {
	case slotReal:
		return conv.RealToWire(w, n.Spec.Float), nil
	case slotPtr:
		return n.wireTempValue(conv, ir.VKPtr, w)
	}
	return conv.IntToWire(w), nil
}

// unwireClassValue is unwireValue dispatched on a precomputed class.
func (n *Node) unwireClassValue(conv wire.Converter, c slotClass, v wire.Value,
	hints map[oid.OID]int, src int) (uint32, error) {
	switch c {
	case slotReal:
		return conv.RealFromWire(v, n.Spec.Float)
	case slotPtr:
		return n.unwireValue(conv, ir.VKPtr, v, hints, src)
	}
	return conv.IntFromWire(v)
}

// marshalFramePlanned converts one activation to machine-independent
// form through a compiled plan. One backing array serves vars, temps and
// the shipped-value list — sized from the plan, so steady-state
// marshalling performs a single allocation per frame.
func (n *Node) marshalFramePlanned(conv wire.Converter, fi frameInfo, pl *convPlan) (wire.MIActivation, []wire.Value) {
	act := wire.MIActivation{
		CodeOID:   fi.lf.code.oc.CodeOID,
		FuncIndex: uint16(fi.lf.idx),
	}
	nt := 0
	if fi.entry {
		act.Stop = wire.EntryStop
	} else {
		act.Stop = uint16(fi.stop.Stop)
		nt = fi.tempDepth
	}
	nv := len(pl.vars)
	if nv+nt == 0 {
		return act, nil
	}
	all := make([]wire.Value, nv+nt)
	n.MarshaledVarSlots += uint64(nv)
	for i := range pl.vars {
		vp := &pl.vars[i]
		var w uint32
		if vp.dead {
			w = vp.zero
			n.CanonicalizedVarSlots++
		} else if vp.inReg {
			w = fi.regs[vp.reg]
		} else {
			w = n.ld32(fi.fp + vp.off)
		}
		v, err := n.wireClassValue(conv, vp.class, w)
		if err != nil {
			panic(fmt.Sprintf("kernel: marshal %s var %s: %v",
				fi.lf.name(), fi.lf.fc.Template.Vars[i].Name, err))
		}
		all[i] = v
	}
	for j := 0; j < nt; j++ {
		w := n.ld32(fi.fp + pl.tempOff + uint32(4*j))
		v, err := n.wireClassValue(conv, pl.tempClassAt(j), w)
		if err != nil {
			panic(fmt.Sprintf("kernel: marshal %s temp %d: %v", fi.lf.name(), j, err))
		}
		all[nv+j] = v
	}
	if nv > 0 {
		act.Vars = all[:nv:nv]
	}
	if nt > 0 {
		act.Temps = all[nv:]
	}
	return act, all
}
