// Migration spans: one span per object hop, aggregating the per-phase
// latency breakdown the paper's evaluation attributes (§3.6) — how long the
// source spent converting machine-dependent state to the machine-independent
// format (and how many conversion-procedure calls that took), how long the
// serialized bytes occupied the wire, and how long the destination spent
// re-specializing the machine-independent records to its own ISA.

package obs

import (
	"fmt"
	"sort"
)

// Span is one object migration (one hop). Times are simulated microseconds;
// phases on different nodes are measured on those nodes' CPU timelines.
//
//	Start ──(MD→MI convert)── ConvOutEnd ──(wire)── RecvAt ──(MI→MD)── End
type Span struct {
	ID       uint32
	Obj      uint32 // migrating object's identity bits
	Src, Dst int32
	ObjKind  string // "plain", "array", "immutable"
	Frags    int    // thread fragments carried
	Acts     int    // activation records carried

	// MD→MI conversion on the source.
	Start        int64
	ConvOutEnd   int64
	ConvOutCalls uint64
	ConvOutBytes uint64

	// Wire: serialized payload size and transit. SendAt is when the frame
	// starts serializing (the source CPU finished marshalling); RecvAt is
	// delivery at the destination.
	WireBytes uint64
	SendAt    int64
	RecvAt    int64

	// MI→MD respecialization on the destination.
	RespecStart int64
	End         int64
	ConvInCalls uint64

	Done bool
}

// ConvOutMicros returns the source-side conversion phase length.
func (s *Span) ConvOutMicros() int64 { return s.ConvOutEnd - s.Start }

// WireMicros returns the wire phase length (serialization + medium +
// latency, from CPU-free to delivery).
func (s *Span) WireMicros() int64 { return s.RecvAt - s.SendAt }

// RespecMicros returns the destination-side respecialization phase length.
func (s *Span) RespecMicros() int64 { return s.End - s.RespecStart }

// TotalMicros returns end-to-end hop latency.
func (s *Span) TotalMicros() int64 { return s.End - s.Start }

// String renders a one-line summary.
func (s *Span) String() string {
	return fmt.Sprintf("span %d: obj%08x node%d->node%d (%s) %d frags/%d acts: conv-out %dµs (%d calls), wire %dµs (%d bytes), respec %dµs (%d calls), total %dµs",
		s.ID, s.Obj, s.Src, s.Dst, s.ObjKind, s.Frags, s.Acts,
		s.ConvOutMicros(), s.ConvOutCalls, s.WireMicros(), s.WireBytes,
		s.RespecMicros(), s.ConvInCalls, s.TotalMicros())
}

// BeginSpan opens a migration span on the source node. The returned span's
// ID travels inside the Move message so the destination can close it.
//
// IDs are minted per source node — ID = idx·stride + src + 1, where idx is
// the node's span-creation count — so the numbering needs no cross-node
// counter and comes out identical under the sequential and parallel
// engines. Only the table itself is locked (source and destination touch a
// span's fields at causally ordered instants, never concurrently).
func (r *Recorder) BeginSpan(at int64, src, dst int32, obj uint32, objKind string) *Span {
	stride := uint32(len(r.nodes))
	if stride == 0 {
		stride = 1
	}
	lane := uint32(0)
	if src >= 0 && int(src) < len(r.nodes) {
		lane = uint32(src)
	}
	r.spanMu.Lock()
	idx := r.spanSeq[lane]
	r.spanSeq[lane]++
	s := &Span{ID: uint32(idx)*stride + lane + 1, Obj: obj, Src: src, Dst: dst,
		ObjKind: objKind, Start: at}
	r.spans[s.ID] = s
	r.spanMu.Unlock()
	return s
}

// Span resolves a span id (nil when unknown — e.g. id 0, or a Move decoded
// from a foreign stream).
func (r *Recorder) Span(id uint32) *Span {
	r.spanMu.Lock()
	s := r.spans[id]
	r.spanMu.Unlock()
	return s
}

// Spans returns every span opened so far, ordered by (Start, Src, ID) —
// a canonical order equal to creation order for the sequential engine and
// identical under the parallel one.
func (r *Recorder) Spans() []*Span {
	r.spanMu.Lock()
	out := make([]*Span, 0, len(r.spans))
	for _, s := range r.spans {
		out = append(out, s)
	}
	r.spanMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.ID < b.ID
	})
	return out
}

// SpanSent records the wire hand-off: the serialized size and the instant
// the source CPU finished marshalling (transmission can start).
func (r *Recorder) SpanSent(id uint32, bytes int, sendAt int64) {
	if s := r.Span(id); s != nil {
		s.WireBytes = uint64(bytes)
		s.SendAt = sendAt
	}
}

// SpanArrived records delivery at the destination.
func (r *Recorder) SpanArrived(id uint32, at int64) {
	if s := r.Span(id); s != nil {
		s.RecvAt = at
	}
}

// SpanRespec closes the span with the destination-side phase.
func (r *Recorder) SpanRespec(id uint32, start, end int64, convCalls uint64) {
	if s := r.Span(id); s != nil {
		s.RespecStart = start
		s.End = end
		s.ConvInCalls = convCalls
		s.Done = true
	}
}
