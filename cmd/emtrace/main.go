// Command emtrace runs an Emerald-subset program on the simulated
// heterogeneous network and exports the run's observability data: a Chrome
// trace-event JSON timeline (load it in chrome://tracing or Perfetto) with
// the per-hop MD→MI / wire / MI→MD phase breakdown, a flat JSON metrics
// dump, the structured event log as text, and a human span table.
//
// Usage:
//
//	emtrace [-net spec] [-mode enhanced|original|batched|fastpath]
//	        [-chaos plan] [-chrome out.json] [-metrics out.json]
//	        [-text] [-spans] file.em
//	emtrace faults [-net spec] [-mode m] [-chaos plan] file.em
//
// With no export flags, emtrace prints the span table. The faults
// subcommand runs the program under a chaos plan and prints a per-node
// reconciliation of injected faults against the protocol's recovery
// actions. All output is deterministic: the same program on the same
// network with the same plan produces identical bytes on every run.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "faults" {
		os.Args = append(os.Args[:1], os.Args[2:]...)
		faultsMain()
		return
	}
	netSpec := flag.String("net", "sun3,hp1,sparc,vax", "comma-separated machine list ("+core.MachineNames+")")
	mode := flag.String("mode", "enhanced", "conversion mode: enhanced, original, batched, fastpath")
	chaosSpec := flag.String("chaos", "", "seeded fault plan, e.g. seed=7,drop=0.05 (see internal/chaos)")
	chromeOut := flag.String("chrome", "", "write a Chrome trace-event JSON timeline to this file")
	metricsOut := flag.String("metrics", "", "write a flat JSON metrics snapshot to this file")
	text := flag.Bool("text", false, "print the structured event log as text to stdout")
	spans := flag.Bool("spans", false, "print the migration-span table (default when no other output is selected)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emtrace [faults] [-net spec] [-mode m] [-chaos plan] [-chrome out.json] [-metrics out.json] [-text] [-spans] file.em")
		os.Exit(2)
	}
	if err := run(*netSpec, *mode, *chaosSpec, *chromeOut, *metricsOut, *text, *spans, flag.Arg(0)); err != nil {
		for _, line := range core.Diagnostics(err) {
			fmt.Fprintln(os.Stderr, "emtrace:", line)
		}
		os.Exit(1)
	}
}

// runUnder compiles and runs file on the given network under an optional
// chaos plan (shared by the default mode and the faults subcommand).
func runUnder(netSpec, mode, chaosSpec, file string) (*core.System, error) {
	machines, err := core.ParseNetwork(netSpec)
	if err != nil {
		return nil, err
	}
	cm, err := core.ParseMode(mode)
	if err != nil {
		return nil, err
	}
	opts := core.Options{Mode: cm}
	if chaosSpec != "" {
		if opts.Chaos, err = chaos.ParsePlan(chaosSpec); err != nil {
			return nil, err
		}
	}
	src, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	return core.RunSource(string(src), machines, opts)
}

func run(netSpec, mode, chaosSpec, chromeOut, metricsOut string, text, spans bool, file string) error {
	sys, err := runUnder(netSpec, mode, chaosSpec, file)
	if err != nil {
		return err
	}
	rec := sys.Recorder()
	if chromeOut != "" {
		if err := writeFile(chromeOut, func(f *os.File) error {
			return obs.WriteChromeTrace(f, rec)
		}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "emtrace: wrote %s (%d spans, %d events)\n",
			chromeOut, len(rec.Spans()), len(rec.Events()))
	}
	if metricsOut != "" {
		snap := sys.MetricsSnapshot()
		if err := writeFile(metricsOut, func(f *os.File) error {
			return obs.WriteMetricsJSON(f, snap)
		}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "emtrace: wrote %s\n", metricsOut)
	}
	if text {
		os.Stdout.Write(obs.EventLog(rec))
	}
	if spans || (chromeOut == "" && metricsOut == "" && !text) {
		fmt.Print(obs.FormatSpans(rec))
	}
	if d := rec.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "emtrace: %d events evicted from full rings (raise kernel.Config.EventRingCap for full streams)\n", d)
	}
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
