// The built-in placement policies. Both are deliberately simple: the point
// of the subsystem is the layering (metrics -> policy -> batched mechanism),
// and simple policies are auditable in the deterministic decision log.

package auto

import (
	"fmt"
	"sort"
)

// GreedyColocate moves an object to its dominant remote caller: whichever
// node has generated the most remote invocations of the object since the
// object was last (re)placed. Once co-located those calls become local and
// stop feeding the remote metrics, so the policy is self-quenching.
type GreedyColocate struct {
	// MinCalls is the accumulated-traffic floor below which an object is
	// left alone (noise gate).
	MinCalls uint64
	// MaxMoves bounds decisions per tick (anti-thrash).
	MaxMoves int
	// acc accumulates per-(object, caller) window traffic; an object's
	// entries reset when the policy decides to move it.
	acc map[objKey]uint64
}

// Name implements Policy.
func (p *GreedyColocate) Name() string { return "greedy-colocate" }

// Decide implements Policy: objects in ascending OID order, dominant caller
// with ties to the lower node id.
func (p *GreedyColocate) Decide(v View, d Delta) []Decision {
	if p.acc == nil {
		p.acc = map[objKey]uint64{}
	}
	for _, oc := range d.ObjCalls {
		p.acc[objKey{oc.OID, oc.Src}] += oc.Count
	}
	byOID := make(map[uint32]ObjInfo, len(v.Objects))
	for _, o := range v.Objects {
		byOID[o.OID] = o
	}
	// Deterministic accumulator walk: sorted by (OID, Src).
	keys := make([]objKey, 0, len(p.acc))
	for k := range p.acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].oid != keys[j].oid {
			return keys[i].oid < keys[j].oid
		}
		return keys[i].src < keys[j].src
	})
	type best struct {
		src int
		cnt uint64
	}
	dominant := map[uint32]best{}
	var order []uint32
	for _, k := range keys {
		cur, ok := dominant[k.oid]
		if !ok {
			order = append(order, k.oid)
		}
		if c := p.acc[k]; c > cur.cnt { // strict: ties keep the lower src
			dominant[k.oid] = best{src: k.src, cnt: c}
		}
	}
	var out []Decision
	for _, id := range order {
		o, ok := byOID[id]
		if !ok || o.Pinned {
			continue
		}
		w := dominant[id]
		if w.cnt < p.MinCalls || w.src == o.Node {
			continue
		}
		out = append(out, Decision{
			Obj: id, Class: o.Class, From: o.Node, To: w.src,
			Why: fmt.Sprintf("%d remote calls from node%d since last placement", w.cnt, w.src),
		})
		// Reset the moved object's history: its new home starts clean.
		for _, k := range keys {
			if k.oid == id {
				delete(p.acc, k)
			}
		}
		if p.MaxMoves > 0 && len(out) >= p.MaxMoves {
			break
		}
	}
	return out
}

// LoadBalance watches per-node instruction pressure and sheds the busiest
// node's hottest movable object to the idlest node when the imbalance
// exceeds Ratio.
type LoadBalance struct {
	// MinInstrs is the window floor under which the hottest node does not
	// count as hot at all.
	MinInstrs uint64
	// Ratio is the hot/cold instruction ratio that triggers a shed.
	Ratio float64
}

// Name implements Policy.
func (p *LoadBalance) Name() string { return "load-balance" }

// Decide implements Policy: at most one shed per tick, hottest and coldest
// nodes with ties to the lower node id, hottest object with ties to the
// lower OID.
func (p *LoadBalance) Decide(v View, d Delta) []Decision {
	if v.Nodes < 2 || len(d.Instrs) < v.Nodes {
		return nil
	}
	hot, cold := 0, 0
	for i := 1; i < v.Nodes; i++ {
		if d.Instrs[i] > d.Instrs[hot] {
			hot = i
		}
		if d.Instrs[i] < d.Instrs[cold] {
			cold = i
		}
	}
	if hot == cold || d.Instrs[hot] < p.MinInstrs {
		return nil
	}
	if float64(d.Instrs[hot]) < p.Ratio*float64(d.Instrs[cold]+1) {
		return nil
	}
	calls := map[uint32]uint64{}
	for _, oc := range d.ObjCalls {
		calls[oc.OID] += oc.Count
	}
	bestOID, bestCnt, found := uint32(0), uint64(0), false
	var bestObj ObjInfo
	for _, o := range v.Objects { // scan order fixed by the kernel (OID asc)
		if o.Node != hot || o.Pinned {
			continue
		}
		if c := calls[o.OID]; !found || c > bestCnt {
			found, bestOID, bestCnt, bestObj = true, o.OID, c, o
		}
	}
	if !found {
		return nil
	}
	return []Decision{{
		Obj: bestOID, Class: bestObj.Class, From: hot, To: cold,
		Why: fmt.Sprintf("node%d ran %d instrs vs node%d's %d this window",
			hot, d.Instrs[hot], cold, d.Instrs[cold]),
	}}
}
