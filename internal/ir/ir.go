// Package ir defines the machine-independent intermediate representation
// produced from checked Emerald-subset programs and consumed by the per-ISA
// native code generators (internal/codegen) and the byte-code interpreter
// (internal/interp).
//
// The IR is a statically typed stack machine over a per-activation
// evaluation-stack plus numbered frame variables. This mirrors the paper's
// compilation model: variables have fixed homes for the whole activation
// (one template per operation), and the number and kinds of live temporaries
// at every potential bus stop are statically known — exactly the information
// the enhanced Emerald compiler records per bus stop (§3.3).
//
// Operations that transfer control to the runtime kernel (operation
// invocations, object creation, system calls, loop bottoms) are the only
// program points the kernel can ever observe; they become bus stops in the
// generated native code.
package ir

import "fmt"

// VK is the storage kind of a 32-bit value slot. Bool, Node and Condition
// values are stored as integers; every object/string/array reference is a
// pointer that must be swizzled when crossing the network.
type VK byte

// Value slot kinds.
const (
	VKInt  VK = iota // integer-like scalar (Int, Bool, Node, Condition)
	VKReal           // 32-bit floating point (format converted per ISA)
	VKPtr            // object reference (swizzled to an OID on the wire)
)

// String renders the kind as a single letter (i/r/p).
func (k VK) String() string {
	switch k {
	case VKInt:
		return "i"
	case VKReal:
		return "r"
	case VKPtr:
		return "p"
	}
	return "?"
}

// Op is an IR opcode.
type Op byte

// IR opcodes. The A operand is an integer immediate, jump target
// (instruction index), slot number, argument count, or comparison code; F is
// a float immediate; S indexes the function's string pool; K is a value
// kind where the operation is kind-generic.
const (
	Nop Op = iota

	// Pushes.
	PushInt  // push A
	PushReal // push F
	PushStr  // push string constant S (allocates-once per code object)
	PushNil  // push nil reference
	PushSelf // push reference to self

	// Frame and object variables.
	LoadVar   // push frame slot A
	StoreVar  // pop into frame slot A
	LoadMine  // push self's data slot A
	StoreMine // pop into self's data slot A

	// Integer arithmetic.
	AddI
	SubI
	MulI
	DivI // traps on zero divisor
	ModI // traps on zero divisor
	NegI
	AbsI

	// Real arithmetic (32-bit).
	AddR
	SubR
	MulR
	DivR
	NegR
	CvtIR // int -> real on top of stack

	// Booleans (ints 0/1).
	NotB
	AndB
	OrB

	// Comparisons: pop two, push bool. A is a Cmp* code.
	CmpI
	CmpR
	CmpS // string comparison (inline; strings are in node memory)
	CmpP // pointer identity; A must be CmpEQ or CmpNE

	// Strings and arrays (inline memory operations).
	SLen   // pop string, push length
	SIndex // pop index, string; push byte value; traps on bounds
	ALen   // pop array, push length
	ALoad  // pop index, array; push element (kind K); traps on bounds
	AStore // pop value, index, array; store; traps on bounds

	// Stack housekeeping.
	Drop

	// Control flow.
	Jump    // to instruction A
	BrFalse // pop; jump to A if zero
	BrTrue  // pop; jump to A if nonzero
	LoopBottom
	Ret

	// Kernel transfers (bus stops).
	Call     // pop A args then receiver; invoke operation named S
	New      // pop A args; create instance of object named S; push ref
	NewArray // pop length; push new array with element kind K

	SysPrint    // pop A args (kinds given by string S, e.g. "isr"), print line
	SysNodes    // push node count
	SysThisNode // push executing node
	SysNodeAt   // pop i, push node i
	SysTimeMS   // push simulated ms
	SysYield    // reschedule
	SysStrOf    // pop value of kind letter S[0] ('i','r','b','n'), push string
	SysConcat   // pop b, a; push a+b (allocates)
	SysMove     // pop target node, ref; move object
	SysFix      // pop node, ref
	SysRefix    // pop node, ref
	SysUnfix    // pop ref
	SysLocate   // pop ref; push node
	SysWait     // pop condition index (int); wait on self's condition
	SysSignal   // pop condition index; signal self's condition

	NumOps // sentinel
)

// Comparison codes for CmpI/CmpR/CmpS/CmpP.
const (
	CmpEQ = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// CmpName renders a comparison code.
func CmpName(c int) string {
	return [...]string{"eq", "ne", "lt", "le", "gt", "ge"}[c]
}

var opNames = [NumOps]string{
	Nop: "nop", PushInt: "pushint", PushReal: "pushreal", PushStr: "pushstr",
	PushNil: "pushnil", PushSelf: "pushself",
	LoadVar: "loadvar", StoreVar: "storevar", LoadMine: "loadmine", StoreMine: "storemine",
	AddI: "addi", SubI: "subi", MulI: "muli", DivI: "divi", ModI: "modi",
	NegI: "negi", AbsI: "absi",
	AddR: "addr", SubR: "subr", MulR: "mulr", DivR: "divr", NegR: "negr", CvtIR: "cvtir",
	NotB: "notb", AndB: "andb", OrB: "orb",
	CmpI: "cmpi", CmpR: "cmpr", CmpS: "cmps", CmpP: "cmpp",
	SLen: "slen", SIndex: "sindex", ALen: "alen", ALoad: "aload", AStore: "astore",
	Drop: "drop",
	Jump: "jump", BrFalse: "brfalse", BrTrue: "brtrue", LoopBottom: "loopbottom", Ret: "ret",
	Call: "call", New: "new", NewArray: "newarray",
	SysPrint: "sys.print", SysNodes: "sys.nodes", SysThisNode: "sys.thisnode",
	SysNodeAt: "sys.nodeat", SysTimeMS: "sys.timems", SysYield: "sys.yield",
	SysStrOf: "sys.strof", SysConcat: "sys.concat",
	SysMove: "sys.move", SysFix: "sys.fix", SysRefix: "sys.refix",
	SysUnfix: "sys.unfix", SysLocate: "sys.locate",
	SysWait: "sys.wait", SysSignal: "sys.signal",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// IsBusStop reports whether the instruction transfers control to the kernel
// and is therefore a potential bus stop in generated native code.
func (o Op) IsBusStop() bool {
	switch o {
	case Call, New, NewArray, LoopBottom,
		SysPrint, SysNodes, SysThisNode, SysNodeAt, SysTimeMS, SysYield,
		SysStrOf, SysConcat, SysMove, SysFix, SysRefix, SysUnfix, SysLocate,
		SysWait, SysSignal:
		return true
	}
	return false
}

// Instr is one IR instruction.
type Instr struct {
	Op Op
	A  int32   // immediate / target / slot / argc / cmp code
	F  float64 // real immediate
	S  int32   // string pool index
	K  VK      // element kind for NewArray/ALoad/AStore
}

// String renders the instruction for dumps.
func (i Instr) String() string {
	switch i.Op {
	case PushInt:
		return fmt.Sprintf("pushint %d", i.A)
	case PushReal:
		return fmt.Sprintf("pushreal %g", i.F)
	case PushStr, SysStrOf:
		return fmt.Sprintf("%s s%d", i.Op, i.S)
	case LoadVar, StoreVar, LoadMine, StoreMine:
		return fmt.Sprintf("%s %d", i.Op, i.A)
	case CmpI, CmpR, CmpS, CmpP:
		return fmt.Sprintf("%s.%s", i.Op, CmpName(int(i.A)))
	case Jump, BrFalse, BrTrue:
		return fmt.Sprintf("%s @%d", i.Op, i.A)
	case Call, New:
		return fmt.Sprintf("%s s%d argc=%d", i.Op, i.S, i.A)
	case NewArray, ALoad, AStore:
		return fmt.Sprintf("%s.%s", i.Op, i.K)
	case SysPrint:
		return fmt.Sprintf("sys.print s%d argc=%d", i.S, i.A)
	}
	return i.Op.String()
}

// Func is one compiled function body.
type Func struct {
	Name       string
	OpName     string // operation name ("inc"), or "$init"/"$process"
	NumParams  int
	NumResults int
	NumVars    int  // params + results + locals (frame slots)
	VarKinds   []VK // length NumVars
	VarNames   []string
	Monitored  bool
	Code       []Instr
	Strings    []string // string pool (also operation/object names for Call/New)
}

// HasResult reports whether calls to f push a value.
func (f *Func) HasResult() bool { return f.NumResults > 0 }

// Object is the compiled form of one object declaration.
type Object struct {
	Name      string
	Immutable bool
	VarKinds  []VK // data area layout
	VarNames  []string
	// MonitoredFrom is the first data slot index that is monitored (slots
	// [MonitoredFrom:] belong to the monitor section).
	MonitoredFrom int
	NumConds      int
	Funcs         []*Func // operations first (declaration order), then $init, then $process (if any)
	HasProcess    bool
}

// FuncIndex returns the index in Funcs of the operation named name, or -1.
func (o *Object) FuncIndex(name string) int {
	for i, f := range o.Funcs {
		if f.OpName == name {
			return i
		}
	}
	return -1
}

// Init returns the $init function.
func (o *Object) Init() *Func { return o.Funcs[o.FuncIndex("$init")] }

// Process returns the $process function or nil.
func (o *Object) Process() *Func {
	if i := o.FuncIndex("$process"); i >= 0 {
		return o.Funcs[i]
	}
	return nil
}

// Program is a compiled program: the unit the per-ISA back ends translate.
type Program struct {
	Objects []*Object
}

// Object returns the object named name, or nil.
func (p *Program) Object(name string) *Object {
	for _, o := range p.Objects {
		if o.Name == name {
			return o
		}
	}
	return nil
}

// StackEffect returns how many values the instruction pops and pushes.
// For Call the push count depends on the callee and is resolved by the
// verifier/codegen via the program's operation tables; here push is reported
// as -1 for Call.
func StackEffect(i Instr) (pop, push int) {
	switch i.Op {
	case Nop, Jump, LoopBottom, Ret, SysYield:
		return 0, 0
	case PushInt, PushReal, PushStr, PushNil, PushSelf, LoadVar, LoadMine,
		SysNodes, SysThisNode, SysTimeMS:
		return 0, 1
	case StoreVar, StoreMine, Drop, BrFalse, BrTrue, SysUnfix, SysWait, SysSignal:
		return 1, 0
	case NegI, AbsI, NegR, CvtIR, NotB, SLen, ALen, SysNodeAt, SysStrOf,
		SysLocate, NewArray:
		return 1, 1
	case AddI, SubI, MulI, DivI, ModI, AddR, SubR, MulR, DivR, AndB, OrB,
		CmpI, CmpR, CmpS, CmpP, SIndex, ALoad, SysConcat:
		return 2, 1
	case SysMove, SysFix, SysRefix:
		return 2, 0
	case AStore:
		return 3, 0
	case SysPrint:
		return int(i.A), 0
	case New:
		return int(i.A), 1
	case Call:
		// Pops receiver + args; always pushes exactly one value (the first
		// result, or integer 0 for result-less operations — statement
		// position drops it). K records the pushed kind.
		return int(i.A) + 1, 1
	}
	panic(fmt.Sprintf("ir: no stack effect for %v", i.Op))
}
