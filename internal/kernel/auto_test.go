// Adaptive-placement kernel tests: the policy tick must drive batched
// cohort migrations, the batch path must survive a seeded fault plan with
// exactly-once installs, and a policy-free run must carry no trace of the
// subsystem.

package kernel

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// chattySrc: a Service (with a Stats helper — the {Service, Stats} cohort)
// born on node 0, hammered by a caller on node 1. greedy-colocate must move
// the pair to node 1 in one batched transfer.
const chattySrc = `
object Stats
  var total: Int <- 0
  operation note(x: Int)
    total <- total + x
  end
end Stats

object Service
  var stats: Stats
  operation work(x: Int) -> (r: Int)
    stats.note(x)
    r <- x * 2 + 1
  end
  initially
    stats <- new Stats
  end initially
end Service

object Caller
  var s: Service
  var n: Int
  process
    move self to node(1)
    var sum: Int <- 0
    var i: Int <- 1
    while i <= n do
      sum <- sum + s.work(i)
      i <- i + 1
    end
    print("caller done sum=", sum)
  end process
end Caller

object Main
  var s: Service
  initially
    s <- new Service
  end initially
  process
    var c: Caller <- new Caller(s, 40)
    print("main up ", c == nil)
  end process
end Main
`

// chattyWant is the program's location-independent output: 40 calls of
// x*2+1 for x=1..40 sum to 40*41 + 40 = 1680.
const chattyWant = "main up false\ncaller done sum=1680"

func autoConfig() Config {
	cfg := DefaultConfig()
	cfg.AutoPolicy = "greedy-colocate"
	cfg.AutoCohorts = [][]string{{"Service", "Stats"}}
	return cfg
}

func countKind(c *Cluster, k obs.Kind) int {
	n := 0
	for _, e := range c.Rec.Events() {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// TestAutoPolicyBatchesCohort: the policy must colocate the chatty Service
// with its caller, and because Stats rides in the same cohort the transfer
// must go out as one MoveGroup.
func TestAutoPolicyBatchesCohort(t *testing.T) {
	models := []netsim.MachineModel{mSun3, mSPARC}
	c := runSrc(t, chattySrc, models, autoConfig())
	if got := c.OutputText(); got != chattyWant {
		t.Fatalf("output = %q, want %q", got, chattyWant)
	}
	if countKind(c, obs.EvAutoDecision) == 0 {
		t.Fatal("policy made no decisions on a 40-call hot loop")
	}
	if countKind(c, obs.EvMoveGroupOut) == 0 || countKind(c, obs.EvMoveGroupIn) == 0 {
		t.Fatal("no batched group transfer despite the {Service, Stats} cohort")
	}
	// The batch actually placed the pair: the service keeps working after
	// the move (the output check above) and colocation drops the remote
	// traffic, so there must be strictly fewer remote invokes than calls.
	var remote uint64
	for _, cp := range c.Rec.Metrics().CountersPrefix("remote_invokes") {
		remote += cp.Value
	}
	if remote >= 40 {
		t.Errorf("remote_invokes = %d; colocation never took effect", remote)
	}
}

// TestAutoGroupMoveChaosExactlyOnce: the batched transfer rides the
// crash-tolerant protocol — under drops, duplicates and corruption the
// program output is unchanged, every span installs exactly once, and the
// same seed reproduces a byte-identical event log.
func TestAutoGroupMoveChaosExactlyOnce(t *testing.T) {
	models := []netsim.MachineModel{mSun3, mSPARC}
	plan := func() *chaos.Plan {
		return &chaos.Plan{Seed: 11, Drop: 0.06, Dup: 0.05, Delay: 0.04, Corrupt: 0.03}
	}
	cfg := func() Config {
		c := autoConfig()
		c.Chaos = plan()
		return c
	}

	c1 := runSrc(t, chattySrc, models, cfg())
	if got := c1.OutputText(); got != chattyWant {
		t.Fatalf("chaos output = %q, want %q", got, chattyWant)
	}
	if countKind(c1, obs.EvMoveGroupOut) == 0 {
		t.Fatal("fault plan run never exercised a batched transfer")
	}
	if countKind(c1, obs.EvFaultInject) == 0 {
		t.Fatal("fault plan never bit; the test proves nothing")
	}
	assertExactlyOnceInstalls(t, c1)

	c2 := runSrc(t, chattySrc, models, cfg())
	log1, log2 := obs.EventLog(c1.Rec), obs.EventLog(c2.Rec)
	if !bytes.Equal(log1, log2) {
		t.Errorf("same seed produced different event logs (%d vs %d bytes)", len(log1), len(log2))
	}
}

// TestAutoOffLeavesNoTrace: with no policy configured the run must contain
// no placement events, no policy-feed metrics, and no decision log.
func TestAutoOffLeavesNoTrace(t *testing.T) {
	models := []netsim.MachineModel{mSun3, mSPARC}
	c := runSrc(t, chattySrc, models, DefaultConfig())
	if got := c.OutputText(); got != chattyWant {
		t.Fatalf("output = %q, want %q", got, chattyWant)
	}
	for _, k := range []obs.Kind{obs.EvAutoDecision, obs.EvMoveGroupOut, obs.EvMoveGroupIn} {
		if n := countKind(c, k); n != 0 {
			t.Errorf("policy-free run emitted %d %v events", n, k)
		}
	}
	for _, cp := range c.Rec.Metrics().Snapshot(0).Counters {
		if strings.HasPrefix(cp.Name, "invoke_") || strings.HasPrefix(cp.Name, "auto_") ||
			strings.HasPrefix(cp.Name, "group_move") {
			t.Errorf("policy-free run recorded metric %s{%s}", cp.Name, cp.Labels)
		}
	}
	if log := c.AutoDecisionLog(); log != nil {
		t.Errorf("policy-free run has a decision log: %v", log)
	}
}
