// Pins the fuse-once discipline: superinstruction fusion (arch.Fuse)
// runs exactly once per loaded function, at code-load time. A thread
// migrating through a function — even repeatedly, as kilroy's token
// does across every node — must never trigger re-fusion: migration
// re-install reuses the node's cached loadedCode, and fusing is a
// per-function, per-node cost, not a per-thread or per-move cost.
package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/arch"
)

func TestFuseOncePerLoadedFunc(t *testing.T) {
	srcBytes, err := os.ReadFile(filepath.Join("..", "..", "examples", "programs", "kilroy.em"))
	if err != nil {
		t.Fatal(err)
	}
	before := arch.FuseBuildCount()
	sys, err := RunSource(string(srcBytes), Figure1Network(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	builds := arch.FuseBuildCount() - before
	loaded := sys.Cluster.LoadedFuncs()
	if loaded == 0 {
		t.Fatal("no functions loaded; pin is vacuous")
	}
	moves := uint64(0)
	for _, n := range sys.Cluster.Nodes {
		moves += n.Migrations
	}
	if moves == 0 {
		t.Fatal("kilroy performed no migrations; pin is vacuous")
	}
	if builds != uint64(loaded) {
		t.Errorf("Fuse ran %d times for %d loaded functions; migration re-install must not re-fuse", builds, loaded)
	}

	// The escape hatches must not fuse at all.
	for _, opts := range []Options{{NoFuse: true}, {LegacyDispatch: true}} {
		before := arch.FuseBuildCount()
		if _, err := RunSource(string(srcBytes), Figure1Network(), opts); err != nil {
			t.Fatal(err)
		}
		if d := arch.FuseBuildCount() - before; d != 0 {
			t.Errorf("%+v: Fuse ran %d times, want 0", opts, d)
		}
	}
}
