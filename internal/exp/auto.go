// The adaptive-placement study (embench auto): one zipf-skewed generated
// workload run under four configurations — no policy, load-balance,
// greedy-colocate with batched cohort moves, and greedy-colocate with
// batching disabled (the control arm). The simulation is deterministic, so
// every number here is exactly reproducible; the two claims the table
// backs are (1) greedy-colocate collapses cross-node invocation traffic,
// and (2) batched cohort transfers cost fewer wire bytes per migrated
// object than the same decisions executed as single-object moves.

package exp

import (
	"fmt"
	"strings"

	"repro/internal/auto/workgen"
	"repro/internal/core"
)

// AutoResult is one configuration's measurement.
type AutoResult struct {
	Config        string  // policy / batching arm
	SimMS         float64 // simulated completion time
	RemoteInvokes uint64  // cross-node invocations over the whole run
	Decisions     uint64  // placement decisions the policy issued
	MovedObjects  int     // migration spans that completed (incl. program moves)
	MoveFrames    uint64  // network frames that carried object/thread moves
	MoveWireBytes uint64  // move payload bytes + per-frame framing overhead
	BytesPerMove  float64 // MoveWireBytes / MovedObjects
	GroupFrames   uint64  // batched cohort transfers among MoveFrames
	GroupObjects  uint64  // objects that rode a batched transfer
}

// autoWorkload is the study's fixed workload: skewed, misplaced, chatty,
// open-loop (the seeded warmup spins give load-balance real instruction
// imbalance to shed while the sessions stagger in).
var autoWorkload = workgen.Config{
	Seed: 7, Services: 4, Sessions: 3, Requests: 24, Theta: 1.1, Nodes: 4, Open: true,
}

// autoArm runs one configuration of the study.
func autoArm(src, label, policy string, noBatch bool) (AutoResult, error) {
	sys, err := core.RunSource(src, core.Figure1Network(), core.Options{
		AutoPolicy: policy, AutoNoBatch: noBatch,
	})
	if err != nil {
		return AutoResult{}, fmt.Errorf("%s: %w", label, err)
	}
	r := AutoResult{Config: label, SimMS: sys.ElapsedMS()}

	var groupFrameBytes, groupMemberBytes uint64
	for _, c := range sys.MetricsSnapshot().Counters {
		switch c.Name {
		case "remote_invokes":
			r.RemoteInvokes += c.Value
		case "auto_decisions":
			r.Decisions += c.Value
		case "group_moves":
			r.GroupFrames += c.Value
		case "group_move_objs":
			r.GroupObjects += c.Value
		case "group_move_frame_bytes":
			groupFrameBytes += c.Value
		case "group_move_member_bytes":
			groupMemberBytes += c.Value
		}
	}

	// Wire cost per migrated object, from the migration spans: every span
	// records its serialized payload share; batched members share one frame
	// (and its framing overhead), singles pay a frame each.
	var spanBytes uint64
	for _, sp := range sys.Recorder().Spans() {
		if sp.RecvAt == 0 {
			continue
		}
		r.MovedObjects++
		spanBytes += sp.WireBytes
	}
	singles := uint64(r.MovedObjects) - r.GroupObjects
	r.MoveFrames = singles + r.GroupFrames
	payload := spanBytes - groupMemberBytes + groupFrameBytes
	overhead := uint64(sys.Cluster.Net.OverheadBytes)
	r.MoveWireBytes = payload + overhead*r.MoveFrames
	if r.MovedObjects > 0 {
		r.BytesPerMove = float64(r.MoveWireBytes) / float64(r.MovedObjects)
	}
	return r, nil
}

// AutoStudy runs all four arms on the fixed workload and returns the rows
// plus the workload's description line.
func AutoStudy() ([]AutoResult, string, error) {
	src := workgen.Generate(autoWorkload)
	desc := fmt.Sprintf("workgen seed=%d: %d services, %d sessions x %d requests, zipf theta=%.1f, %d nodes, open-loop",
		autoWorkload.Seed, autoWorkload.Services, autoWorkload.Sessions,
		autoWorkload.Requests, autoWorkload.Theta, autoWorkload.Nodes)
	arms := []struct {
		label, policy string
		noBatch       bool
	}{
		{"off", "", false},
		{"load-balance", "load-balance", false},
		{"greedy-colocate", "greedy-colocate", false},
		{"greedy-colocate/nobatch", "greedy-colocate", true},
	}
	var out []AutoResult
	for _, a := range arms {
		r, err := autoArm(src, a.label, a.policy, a.noBatch)
		if err != nil {
			return nil, "", err
		}
		out = append(out, r)
	}
	return out, desc, nil
}

// FormatAuto renders the study as the human-readable table.
func FormatAuto(rows []AutoResult, desc string) string {
	var b strings.Builder
	b.WriteString("Adaptive placement on a zipf-skewed service workload\n")
	b.WriteString(desc + "\n")
	fmt.Fprintf(&b, "%-24s %9s %8s %6s %6s %7s %9s %8s\n",
		"policy", "sim time", "remote", "decs", "moves", "frames", "movebytes", "B/move")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %7.1fms %8d %6d %6d %7d %9d %8.1f\n",
			r.Config, r.SimMS, r.RemoteInvokes, r.Decisions,
			r.MovedObjects, r.MoveFrames, r.MoveWireBytes, r.BytesPerMove)
	}
	b.WriteString("remote = cross-node invocations; moves = migrated objects/threads;\n")
	b.WriteString("B/move = wire bytes (payload + framing) per migrated object.\n")
	return b.String()
}

// BenchAutoRow is one arm in BENCH_auto.json.
type BenchAutoRow struct {
	Config        string  `json:"config"`
	SimMS         float64 `json:"sim_ms"`
	RemoteInvokes uint64  `json:"remote_invokes"`
	Decisions     uint64  `json:"decisions"`
	MovedObjects  int     `json:"moved_objects"`
	MoveFrames    uint64  `json:"move_frames"`
	MoveWireBytes uint64  `json:"move_wire_bytes"`
	BytesPerMove  float64 `json:"bytes_per_move"`
	GroupFrames   uint64  `json:"group_frames"`
	GroupObjects  uint64  `json:"group_objects"`
}

// BenchAuto is the BENCH_auto.json document.
type BenchAuto struct {
	Benchmark string         `json:"benchmark"`
	Unit      string         `json:"unit"`
	Workload  string         `json:"workload"`
	Rows      []BenchAutoRow `json:"rows"`
}

// BenchAutoDoc converts the study rows to the JSON document.
func BenchAutoDoc(rows []AutoResult, desc string) BenchAuto {
	doc := BenchAuto{
		Benchmark: "auto",
		Unit:      "mixed (ms, counts, bytes)",
		Workload:  desc,
	}
	for _, r := range rows {
		doc.Rows = append(doc.Rows, BenchAutoRow{
			Config: r.Config, SimMS: r.SimMS, RemoteInvokes: r.RemoteInvokes,
			Decisions: r.Decisions, MovedObjects: r.MovedObjects,
			MoveFrames: r.MoveFrames, MoveWireBytes: r.MoveWireBytes,
			BytesPerMove: r.BytesPerMove, GroupFrames: r.GroupFrames,
			GroupObjects: r.GroupObjects,
		})
	}
	return doc
}
