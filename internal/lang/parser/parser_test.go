package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lang/ast"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return prog
}

func wantErr(t *testing.T, src, frag string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("expected parse error containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not contain %q", err, frag)
	}
}

const counterSrc = `
object Counter
  monitor
    var count: Int <- 0
    var nonzero: Condition
    operation inc(n: Int) -> (r: Int)
      count <- count + n
      signal nonzero
      r <- count
    end inc
    operation take() -> (r: Int)
      while count == 0 do
        wait nonzero
      end
      count <- count - 1
      r <- count
    end take
  end monitor
end Counter

object Main
  var c: Counter
  initially
    c <- new Counter
  end initially
  process
    var x: Int <- c.inc(3)
    print("got ", x)
  end process
end Main
`

func TestParseCounter(t *testing.T) {
	prog := mustParse(t, counterSrc)
	if len(prog.Objects) != 2 {
		t.Fatalf("objects = %d, want 2", len(prog.Objects))
	}
	c := prog.Objects[0]
	if c.Name != "Counter" || c.Monitor == nil {
		t.Fatalf("Counter malformed: %+v", c)
	}
	if len(c.Monitor.Vars) != 2 || len(c.Monitor.Ops) != 2 {
		t.Fatalf("monitor: %d vars %d ops", len(c.Monitor.Vars), len(c.Monitor.Ops))
	}
	inc := c.Op("inc")
	if inc == nil || !inc.Monitored || len(inc.Params) != 1 || len(inc.Results) != 1 {
		t.Fatalf("inc malformed: %+v", inc)
	}
	m := prog.Objects[1]
	if m.Initially == nil || m.Process == nil || len(m.Vars) != 1 {
		t.Fatalf("Main malformed")
	}
}

func TestParseMobilityStatements(t *testing.T) {
	prog := mustParse(t, `
object M
  process
    var o: M <- new M
    move o to node(1)
    fix o at thisnode()
    refix o at node(0)
    unfix o
    var where: Node <- locate(o)
    print(where)
  end process
end M
`)
	stmts := prog.Objects[0].Process.Stmts
	if _, ok := stmts[1].(*ast.MoveStmt); !ok {
		t.Errorf("stmt 1 = %T, want MoveStmt", stmts[1])
	}
	if fx, ok := stmts[2].(*ast.FixStmt); !ok || fx.Refix {
		t.Errorf("stmt 2 = %T (refix=%v), want fix", stmts[2], ok)
	}
	if fx, ok := stmts[3].(*ast.FixStmt); !ok || !fx.Refix {
		t.Errorf("stmt 3 = %T, want refix", stmts[3])
	}
	if _, ok := stmts[4].(*ast.UnfixStmt); !ok {
		t.Errorf("stmt 4 = %T, want UnfixStmt", stmts[4])
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := mustParse(t, `
object M
  operation f() -> (r: Int)
    r <- 1 + 2 * 3
  end
end M
`)
	op := prog.Objects[0].Ops[0]
	as := op.Body.Stmts[0].(*ast.AssignStmt)
	add, ok := as.Rhs.(*ast.Binary)
	if !ok {
		t.Fatalf("rhs = %T", as.Rhs)
	}
	if _, ok := add.Y.(*ast.Binary); !ok {
		t.Fatalf("2*3 should bind tighter: %T", add.Y)
	}
}

func TestParseBoolPrecedence(t *testing.T) {
	prog := mustParse(t, `
object M
  operation f(a: Int, b: Int) -> (r: Bool)
    r <- a < 1 & b > 2 | a == b
  end
end M
`)
	as := prog.Objects[0].Ops[0].Body.Stmts[0].(*ast.AssignStmt)
	or, ok := as.Rhs.(*ast.Binary)
	if !ok || or.Op.String() != "|" {
		t.Fatalf("top = %v, want |", as.Rhs)
	}
}

func TestParseIfChain(t *testing.T) {
	prog := mustParse(t, `
object M
  operation f(x: Int) -> (r: Int)
    if x == 0 then
      r <- 1
    elseif x == 1 then
      r <- 2
    elseif x == 2 then
      r <- 3
    else
      r <- 4
    end if
  end
end M
`)
	ifs := prog.Objects[0].Ops[0].Body.Stmts[0].(*ast.IfStmt)
	if len(ifs.Elifs) != 2 || ifs.Else == nil {
		t.Fatalf("elifs=%d else=%v", len(ifs.Elifs), ifs.Else != nil)
	}
}

func TestParseLoops(t *testing.T) {
	prog := mustParse(t, `
object M
  operation f() -> (r: Int)
    loop
      r <- r + 1
      exit when r > 10
    end loop
    while r > 0 do
      r <- r - 1
      exit
    end while
  end
end M
`)
	body := prog.Objects[0].Ops[0].Body
	lp := body.Stmts[0].(*ast.LoopStmt)
	ex := lp.Body.Stmts[1].(*ast.ExitStmt)
	if ex.When == nil {
		t.Error("exit when lost its condition")
	}
	wl := body.Stmts[1].(*ast.WhileStmt)
	if wl.Cond == nil || len(wl.Body.Stmts) != 2 {
		t.Error("while malformed")
	}
}

func TestParseChainedInvocationsAndIndex(t *testing.T) {
	prog := mustParse(t, `
object M
  operation f(a: Array[Int]) -> (r: Int)
    r <- a[a[0]] + a.size()
    a[1] <- r
  end
end M
`)
	body := prog.Objects[0].Ops[0].Body
	as := body.Stmts[0].(*ast.AssignStmt)
	add := as.Rhs.(*ast.Binary)
	idx := add.X.(*ast.Index)
	if _, ok := idx.I.(*ast.Index); !ok {
		t.Errorf("nested index = %T", idx.I)
	}
	if inv, ok := add.Y.(*ast.Invoke); !ok || inv.OpName != "size" {
		t.Errorf("size call = %v", add.Y)
	}
	as2 := body.Stmts[1].(*ast.AssignStmt)
	if _, ok := as2.Lhs.(*ast.Index); !ok {
		t.Errorf("indexed lhs = %T", as2.Lhs)
	}
}

func TestParseNewForms(t *testing.T) {
	prog := mustParse(t, `
object P
  var x: Int
end P
object M
  process
    var p: P <- new P(5)
    var q: P <- new P
    var a: Array[Real] <- new Array[Real](10)
    print(p, q, a)
  end process
end M
`)
	stmts := prog.Objects[1].Process.Stmts
	n := stmts[0].(*ast.DeclStmt).Decl.Init.(*ast.New)
	if len(n.Args) != 1 {
		t.Errorf("new P(5) args = %d", len(n.Args))
	}
	n2 := stmts[1].(*ast.DeclStmt).Decl.Init.(*ast.New)
	if len(n2.Args) != 0 {
		t.Errorf("new P args = %d", len(n2.Args))
	}
	n3 := stmts[2].(*ast.DeclStmt).Decl.Init.(*ast.New)
	if n3.Type.Name != "Array" || n3.Type.Elem.Name != "Real" {
		t.Errorf("array type = %v", n3.Type)
	}
}

func TestParseImmutable(t *testing.T) {
	prog := mustParse(t, `
immutable object K
  operation f() -> (r: Int)
    r <- 42
  end
end K
`)
	if !prog.Objects[0].Immutable {
		t.Error("immutable flag lost")
	}
}

func TestParseErrors(t *testing.T) {
	wantErr(t, "object", "expected identifier")
	wantErr(t, "object M end X", "does not match object")
	wantErr(t, "frobnicate", "expected object declaration")
	wantErr(t, `
object M
  operation f() -> (r: Int)
    1 + 2
  end
end M`, "must be an invocation")
	wantErr(t, `
object M
  operation f() -> (r: Int)
    1 <- r
  end
end M`, "left side of <-")
	wantErr(t, `
object M
  monitor
    var x: Int
  end monitor
  var z: Int
  monitor
    var y: Int
  end monitor
end M`, "more than one monitor")
	wantErr(t, `
object M
  process
  end process
  process
  end process
end M`, "more than one process")
}

func TestParseErrorRecovery(t *testing.T) {
	// Multiple errors should all be reported, not just the first.
	_, err := Parse(`
object M
  operation f( -> (r: Int)
  end
end M
object N
  operation g() -> r: Int)
  end
end N
`)
	if err == nil {
		t.Fatal("expected errors")
	}
	if !strings.Contains(err.Error(), "more error") {
		t.Logf("single error: %v (acceptable)", err)
	}
}

func TestParseUnaryChain(t *testing.T) {
	prog := mustParse(t, `
object M
  operation f(x: Int, b: Bool) -> (r: Int)
    r <- - -x
    if !(!b) then
      r <- 0
    end
  end
end M
`)
	as := prog.Objects[0].Ops[0].Body.Stmts[0].(*ast.AssignStmt)
	u := as.Rhs.(*ast.Unary)
	if _, ok := u.X.(*ast.Unary); !ok {
		t.Errorf("double negation = %T", u.X)
	}
}

func TestTrailingNamesOptional(t *testing.T) {
	mustParse(t, `
object M
  operation f()
  end
  process
  end
end
`)
}

func TestQuickParserNeverPanics(t *testing.T) {
	// The parser must survive arbitrary input: errors, never panics or
	// non-termination.
	prop := func(src string) bool {
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// And keyword-dense garbage specifically.
	frags := []string{"object", "end", "if", "then", "monitor", "process",
		"<-", "(", ")", "x", "1", "\"s", "var", ":", "Int", "while", "do", "%"}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		var b strings.Builder
		for i := 0; i < rng.Intn(40); i++ {
			b.WriteString(frags[rng.Intn(len(frags))])
			b.WriteByte(' ')
		}
		_, _ = Parse(b.String())
	}
}
