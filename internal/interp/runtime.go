// Package interp implements the two machine-independent execution levels of
// the paper's thread-state specialization hierarchy (Figure 2): a
// source-level AST interpreter and a byte-code interpreter over the IR. The
// bottom (native) level is the compiled code running on the simulated ISAs
// in internal/kernel.
//
// Both interpreters are single-node — like BC-Emerald, the "newer but
// non-distributed byte-coded version" the paper mentions (§3.7) — and share
// this runtime: dynamically typed values, objects, arrays, monitors with
// condition queues, and a deterministic cooperative scheduler. They exist
// to reproduce Figure 2 (execution lower in the hierarchy is faster) and to
// serve as a differential oracle for the native pipeline: any single-node
// program must print the same lines on all three levels.
package interp

import (
	"fmt"
	"strconv"

	"repro/internal/lang/ast"
)

// NodeVal is the runtime representation of a Node value.
type NodeVal int32

// CondVal is the runtime representation of a Condition value.
type CondVal int32

// Object is a runtime object instance.
type Object struct {
	Decl *ast.ObjectDecl
	Vars []any
	// Monitor state.
	holder *Thread
	entry  []*Thread
	conds  [][]*Thread
}

// Array is a runtime array.
type Array struct{ Elems []any }

// Thread is one cooperative thread.
type Thread struct {
	id      int
	run     func(*Thread) // body; executed by the scheduler
	blocked bool
	dead    bool
	// resume is signalled to let the thread continue; yielded is signalled
	// by the thread when it hands control back.
	resume  chan struct{}
	yielded chan struct{}
}

// Fault aborts a thread with a runtime error.
type Fault struct{ Msg string }

func (f *Fault) Error() string { return f.Msg }

// Faultf panics with a runtime fault (caught per thread).
func Faultf(format string, args ...any) {
	panic(&Fault{Msg: fmt.Sprintf(format, args...)})
}

// RT is the shared single-node runtime.
type RT struct {
	Output  []string
	Faults  []string
	Steps   uint64 // abstract work units (for pseudo-time)
	threads []*Thread
	runq    []*Thread
	cur     *Thread
	nextID  int
}

// NewRT returns an empty runtime.
func NewRT() *RT { return &RT{} }

// Print appends a line of output.
func (rt *RT) Print(s string) { rt.Output = append(rt.Output, s) }

// Spawn registers a new thread executing body.
func (rt *RT) Spawn(body func(*Thread)) *Thread {
	rt.nextID++
	t := &Thread{
		id: rt.nextID, run: body,
		resume:  make(chan struct{}),
		yielded: make(chan struct{}),
	}
	rt.threads = append(rt.threads, t)
	rt.runq = append(rt.runq, t)
	return t
}

// Yield hands control back to the scheduler and requeues the thread.
func (rt *RT) Yield() {
	t := rt.cur
	rt.runq = append(rt.runq, t)
	rt.pause(t)
}

// block suspends the current thread without requeueing it.
func (rt *RT) block() {
	t := rt.cur
	t.blocked = true
	rt.pause(t)
}

// pause switches to the scheduler and waits to be resumed.
func (rt *RT) pause(t *Thread) {
	t.yielded <- struct{}{}
	<-t.resume
}

// wake makes t runnable again.
func (rt *RT) wake(t *Thread) {
	t.blocked = false
	rt.runq = append(rt.runq, t)
}

// Run drives all threads to completion (or deadlock), deterministically:
// strictly one thread executes at a time, scheduled FIFO.
func (rt *RT) Run() {
	for len(rt.runq) > 0 {
		t := rt.runq[0]
		rt.runq = rt.runq[1:]
		if t.dead || t.blocked {
			continue
		}
		rt.cur = t
		if t.run != nil {
			// First activation: start the goroutine.
			body := t.run
			t.run = nil
			go func() {
				defer func() {
					if r := recover(); r != nil {
						if f, ok := r.(*Fault); ok {
							rt.Faults = append(rt.Faults, f.Msg)
						} else {
							panic(r)
						}
					}
					t.dead = true
					t.yielded <- struct{}{}
				}()
				body(t)
			}()
		} else {
			t.resume <- struct{}{}
		}
		<-t.yielded
	}
	rt.cur = nil
}

// ---------------------------------------------------------------- monitors

// MonEnter acquires obj's monitor for the current thread (blocking).
func (rt *RT) MonEnter(obj *Object) {
	if obj.holder == nil {
		obj.holder = rt.cur
		return
	}
	obj.entry = append(obj.entry, rt.cur)
	rt.block()
	// Resumed as holder.
}

// MonExit releases obj's monitor.
func (rt *RT) MonExit(obj *Object) {
	if obj.holder != rt.cur {
		Faultf("monitor exit by non-holder")
	}
	obj.holder = nil
	if len(obj.entry) > 0 {
		next := obj.entry[0]
		obj.entry = obj.entry[1:]
		obj.holder = next
		rt.wake(next)
	}
}

// Wait releases the monitor and waits on condition k.
func (rt *RT) Wait(obj *Object, k int) {
	if obj.holder != rt.cur {
		Faultf("wait without holding the monitor")
	}
	for len(obj.conds) <= k {
		obj.conds = append(obj.conds, nil)
	}
	obj.conds[k] = append(obj.conds[k], rt.cur)
	cur := rt.cur
	obj.holder = nil
	if len(obj.entry) > 0 {
		next := obj.entry[0]
		obj.entry = obj.entry[1:]
		obj.holder = next
		rt.wake(next)
	}
	rt.block()
	// Mesa semantics: we were moved to the entry queue by Signal and
	// resumed as holder.
	_ = cur
}

// Signal wakes one waiter of condition k (it must reacquire the monitor).
func (rt *RT) Signal(obj *Object, k int) {
	if obj.holder != rt.cur {
		Faultf("signal without holding the monitor")
	}
	if len(obj.conds) <= k || len(obj.conds[k]) == 0 {
		return
	}
	w := obj.conds[k][0]
	obj.conds[k] = obj.conds[k][1:]
	obj.entry = append(obj.entry, w)
}

// ---------------------------------------------------------------- values

// FormatValue renders a runtime value like the native kernel's print.
func FormatValue(v any) string {
	switch v := v.(type) {
	case nil:
		return "nil"
	case int32:
		return strconv.Itoa(int(v))
	case bool:
		if v {
			return "true"
		}
		return "false"
	case float32:
		return strconv.FormatFloat(float64(v), 'g', -1, 32)
	case NodeVal:
		return "node" + strconv.Itoa(int(v))
	case CondVal:
		return strconv.Itoa(int(v))
	case string:
		return v
	case *Object:
		return "<" + v.Decl.Name + ">"
	case *Array:
		return "<array>"
	}
	return fmt.Sprintf("<%T>", v)
}

// Truthy converts a runtime bool.
func Truthy(v any) bool {
	b, ok := v.(bool)
	if !ok {
		Faultf("condition is not a Bool (%T)", v)
	}
	return b
}

// AsInt extracts an integer-like value.
func AsInt(v any) int32 {
	switch v := v.(type) {
	case int32:
		return v
	case NodeVal:
		return int32(v)
	case CondVal:
		return int32(v)
	case bool:
		if v {
			return 1
		}
		return 0
	}
	Faultf("expected Int, got %T", v)
	return 0
}

// AsReal extracts a real, widening ints.
func AsReal(v any) float32 {
	switch v := v.(type) {
	case float32:
		return v
	case int32:
		return float32(v)
	}
	Faultf("expected Real, got %T", v)
	return 0
}
