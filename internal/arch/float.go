// Floating point formats. Reals are 32-bit values stored in registers and
// memory slots in the architecture's own format; the wire format is IEEE
// 754 (the "network format" for reals), so VAX values are converted on
// every migration — one of the data-format conversions the paper's
// marshaller performs.

package arch

import "math"

// FloatCodec converts between a float value and its 32-bit machine
// representation.
type FloatCodec interface {
	Enc(float32) uint32
	Dec(uint32) float32
	Name() string
}

// IEEEFloat is standard IEEE 754 binary32 (M68K, SPARC).
type IEEEFloat struct{}

// Name returns "ieee754".
func (IEEEFloat) Name() string { return "ieee754" }

// Enc encodes v.
func (IEEEFloat) Enc(v float32) uint32 { return math.Float32bits(v) }

// Dec decodes bits.
func (IEEEFloat) Dec(bits uint32) float32 { return math.Float32frombits(bits) }

// VAXFloat is the VAX F-float format: sign bit, 8-bit excess-128 exponent,
// 23-bit fraction with a hidden 0.1₂ leading bit — so the represented value
// is (-1)^s · 0.1f₂ · 2^(e-128) — stored with the PDP-11 word order (the
// two 16-bit halves of the word swapped relative to little-endian order).
// A zero exponent with a zero sign is the value zero; we saturate values
// outside the representable range.
type VAXFloat struct{}

// Name returns "vaxf".
func (VAXFloat) Name() string { return "vaxf" }

// Enc encodes v as VAX F-float bits.
func (VAXFloat) Enc(v float32) uint32 {
	ieee := math.Float32bits(v)
	sign := ieee >> 31
	exp := int32((ieee >> 23) & 0xff)
	frac := ieee & 0x7fffff
	var out uint32
	switch {
	case exp == 0:
		// Zero and IEEE denormals: VAX F has no denormals; flush to zero.
		out = 0
		sign = 0
	case exp == 0xff:
		// Inf/NaN: VAX F has neither; saturate to the largest magnitude.
		out = sign<<31 | 0xff<<23 | 0x7fffff
	default:
		// IEEE value = 1.f · 2^(e-127); VAX value = 0.1f · 2^(E-128),
		// so E = e - 127 + 1 + 128 - 128 ... concretely E = e + 2 - 128 + 128
		// reduces to E = e + 2 when both biases are accounted for:
		// 1.f·2^(e-127) = 0.1f·2^(e-126) and VAX exponent field E satisfies
		// value = 0.1f·2^(E-128), hence E = e + 2.
		ve := exp + 2
		if ve >= 0xff {
			out = sign<<31 | 0xff<<23 | 0x7fffff
		} else if ve <= 0 {
			out = 0
			sign = 0
		} else {
			out = sign<<31 | uint32(ve)<<23 | frac
		}
	}
	return wordSwap(out)
}

// Dec decodes VAX F-float bits.
func (VAXFloat) Dec(bits uint32) float32 {
	b := wordSwap(bits)
	sign := b >> 31
	ve := int32((b >> 23) & 0xff)
	frac := b & 0x7fffff
	if ve == 0 {
		if sign == 0 {
			return 0
		}
		// Sign=1, exp=0 is a VAX "reserved operand"; treat as zero.
		return 0
	}
	e := ve - 2
	if e <= 0 {
		return 0
	}
	ieee := sign<<31 | uint32(e)<<23 | frac
	return math.Float32frombits(ieee)
}

// wordSwap exchanges the 16-bit halves of a word (PDP word order).
func wordSwap(v uint32) uint32 { return v<<16 | v>>16 }
