// Negative fixture: poke bare-calls bump — both monitored, monitors are not
// reentrant, so the inner entry would block forever.
object Counter
  monitor
    var n: Int <- 0
    operation bump() -> (r: Int)
      n <- n + 1
      r <- n
    end
    operation poke() -> (r: Int)
      r <- bump()
    end
  end monitor
end Counter

object Main
  process
    var c: Counter <- new Counter
    print(c.poke())
  end process
end Main
