// IR verification and evaluation-stack analysis.
//
// Analyze computes, for every instruction, the kinds of the values on the
// evaluation stack before the instruction executes. This is the static
// information the paper's compiler captures per bus stop: "the number and
// types of temporary variables in use" (§3.3). The per-ISA back ends embed
// the result in the bus-stop tables; the kernel uses it to convert live
// temporaries between machine-dependent and machine-independent formats.

package ir

import "fmt"

// FuncInfo is the result of analyzing one function.
type FuncInfo struct {
	// StackIn[i] holds the evaluation-stack kinds before instruction i
	// (bottom first). nil marks unreachable instructions.
	StackIn [][]VK
	// Reach[i] reports whether instruction i is reachable.
	Reach []bool
	// MaxStack is the deepest evaluation stack at any point.
	MaxStack int
}

// Analyze verifies f against the program and object layouts and returns the
// stack maps. objKinds is the data-area layout of the object owning f.
func Analyze(f *Func, objKinds []VK) (*FuncInfo, error) {
	n := len(f.Code)
	if n == 0 || f.Code[n-1].Op != Ret && f.Code[n-1].Op != Jump {
		return nil, fmt.Errorf("%s: function must end in ret or jump", f.Name)
	}
	info := &FuncInfo{StackIn: make([][]VK, n), Reach: make([]bool, n)}
	type workItem struct {
		pc    int
		stack []VK
	}
	work := []workItem{{0, nil}}
	errf := func(pc int, format string, args ...any) error {
		return fmt.Errorf("%s@%d (%s): %s", f.Name, pc, f.Code[pc], fmt.Sprintf(format, args...))
	}
	sameStack := func(a, b []VK) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		pc, stack := it.pc, it.stack
		for {
			if pc < 0 || pc >= n {
				return nil, fmt.Errorf("%s: control flows to invalid pc %d", f.Name, pc)
			}
			if info.Reach[pc] {
				if !sameStack(info.StackIn[pc], stack) {
					return nil, errf(pc, "stack mismatch at join: %v vs %v", info.StackIn[pc], stack)
				}
				break
			}
			info.Reach[pc] = true
			info.StackIn[pc] = append([]VK(nil), stack...)
			if len(stack) > info.MaxStack {
				info.MaxStack = len(stack)
			}
			i := f.Code[pc]
			pop, _ := StackEffect(i)
			if len(stack) < pop {
				return nil, errf(pc, "stack underflow: have %d, need %d", len(stack), pop)
			}
			popped := stack[len(stack)-pop:]
			stack = stack[:len(stack)-pop]
			if err := checkPops(f, i, popped); err != nil {
				return nil, errf(pc, "%v", err)
			}
			// Pushes.
			switch i.Op {
			case PushInt:
				stack = append(stack, VKInt)
			case PushReal:
				stack = append(stack, VKReal)
			case PushStr, PushNil, PushSelf, SysConcat, SysStrOf, New, NewArray:
				stack = append(stack, VKPtr)
			case LoadVar:
				if int(i.A) >= len(f.VarKinds) {
					return nil, errf(pc, "variable %d out of range", i.A)
				}
				stack = append(stack, f.VarKinds[i.A])
			case StoreVar:
				if int(i.A) >= len(f.VarKinds) {
					return nil, errf(pc, "variable %d out of range", i.A)
				}
				if popped[0] != f.VarKinds[i.A] {
					return nil, errf(pc, "stores %v into %v slot", popped[0], f.VarKinds[i.A])
				}
			case LoadMine:
				if int(i.A) >= len(objKinds) {
					return nil, errf(pc, "object slot %d out of range", i.A)
				}
				stack = append(stack, objKinds[i.A])
			case StoreMine:
				if int(i.A) >= len(objKinds) {
					return nil, errf(pc, "object slot %d out of range", i.A)
				}
				if popped[0] != objKinds[i.A] {
					return nil, errf(pc, "stores %v into %v object slot", popped[0], objKinds[i.A])
				}
			case AddI, SubI, MulI, DivI, ModI, NegI, AbsI, NotB, AndB, OrB,
				CmpI, CmpR, CmpS, CmpP, SLen, SIndex, ALen,
				SysNodes, SysThisNode, SysNodeAt, SysTimeMS, SysLocate:
				stack = append(stack, VKInt)
			case AddR, SubR, MulR, DivR, NegR, CvtIR:
				stack = append(stack, VKReal)
			case ALoad:
				stack = append(stack, i.K)
			case Call:
				stack = append(stack, i.K)
			}
			// Control flow.
			switch i.Op {
			case Ret:
				if len(stack) != 0 {
					return nil, errf(pc, "ret with %d values on stack", len(stack))
				}
				goto nextWork
			case Jump:
				pc = int(i.A)
			case BrFalse, BrTrue:
				work = append(work, workItem{int(i.A), append([]VK(nil), stack...)})
				pc++
			default:
				pc++
			}
		}
	nextWork:
	}
	return info, nil
}

// checkPops validates the kinds of popped operands for operations with a
// fixed signature. popped is ordered bottom-to-top.
func checkPops(f *Func, i Instr, popped []VK) error {
	want := func(kinds ...VK) error {
		for j, k := range kinds {
			if popped[j] != k {
				return fmt.Errorf("operand %d is %v, want %v (%v)", j, popped[j], k, popped)
			}
		}
		return nil
	}
	switch i.Op {
	case AddI, SubI, MulI, DivI, ModI, AndB, OrB, CmpI:
		return want(VKInt, VKInt)
	case AddR, SubR, MulR, DivR, CmpR:
		return want(VKReal, VKReal)
	case NegI, AbsI, NotB, CvtIR, BrFalse, BrTrue, SysNodeAt, SysWait, SysSignal:
		return want(VKInt)
	case NegR:
		return want(VKReal)
	case CmpS, SysConcat:
		return want(VKPtr, VKPtr)
	case CmpP:
		if int(i.A) != CmpEQ && int(i.A) != CmpNE {
			return fmt.Errorf("pointer comparison must be eq/ne")
		}
		return want(VKPtr, VKPtr)
	case SLen, ALen, SysUnfix, SysLocate:
		return want(VKPtr)
	case SIndex:
		return want(VKPtr, VKInt)
	case ALoad:
		return want(VKPtr, VKInt)
	case AStore:
		if err := want(VKPtr, VKInt); err != nil {
			return err
		}
		if popped[2] != i.K {
			return fmt.Errorf("stores %v into %v array", popped[2], i.K)
		}
	case NewArray:
		return want(VKInt)
	case SysMove, SysFix, SysRefix:
		return want(VKPtr, VKInt)
	case Call:
		// Receiver is below the arguments.
		if popped[0] != VKPtr {
			return fmt.Errorf("call receiver is %v, want pointer", popped[0])
		}
	case StoreVar, StoreMine, Drop, SysPrint, SysStrOf, New:
		// Kind-generic; StoreVar/StoreMine checked by caller.
	}
	return nil
}

// AnalyzeProgram analyzes every function of every object, returning the
// FuncInfo keyed by function. It fails on the first invalid function.
func AnalyzeProgram(p *Program) (map[*Func]*FuncInfo, error) {
	out := make(map[*Func]*FuncInfo)
	for _, o := range p.Objects {
		for _, f := range o.Funcs {
			fi, err := Analyze(f, o.VarKinds)
			if err != nil {
				return nil, err
			}
			out[f] = fi
		}
	}
	return out, nil
}

// Dump renders a function's code for debugging and golden tests.
func Dump(f *Func) string {
	s := fmt.Sprintf("func %s params=%d results=%d vars=%d monitored=%v\n",
		f.Name, f.NumParams, f.NumResults, f.NumVars, f.Monitored)
	for i, in := range f.Code {
		s += fmt.Sprintf("  %3d: %s\n", i, in)
	}
	return s
}
